//! Per-segment buffer with progressive Gaussian elimination.

use gossamer_gf256::{slice, Gf256};
use rand::{Rng, RngExt};

use crate::{CodedBlock, CodingError, SegmentId, SegmentParams};

/// Outcome of offering a coded block to a [`SegmentBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The block increased the buffer's rank.
    Innovative {
        /// The rank after insertion.
        rank: usize,
    },
    /// The block lay in the span of already-buffered blocks and was
    /// discarded.
    Redundant,
}

impl InsertOutcome {
    /// Returns `true` for [`InsertOutcome::Innovative`].
    #[must_use]
    pub const fn is_innovative(&self) -> bool {
        matches!(self, Self::Innovative { .. })
    }
}

/// One row of the echelon form: a coefficient vector and the matching
/// coded payload, transformed in lockstep.
///
/// Each row also remembers the provenance of the arrival that created
/// it (origin timestamp and hop count). Row reduction mixes payloads
/// across arrivals, so this is an attribution of the *rank increment*
/// to the block that caused it — exactly the granularity the recoder's
/// max/increment carry-forward needs.
#[derive(Debug, Clone)]
struct Row {
    pivot: usize,
    coeffs: Vec<u8>,
    payload: Vec<u8>,
    origin_us: u64,
    hops: u16,
}

/// Stores up to `s` linearly independent coded blocks of one segment,
/// kept in *reduced* row-echelon form so that:
///
/// * innovation checks are O(s²) byte operations per arrival,
/// * [`SegmentBuffer::recode`] emits a fresh random combination of the
///   buffered subspace (what relays transmit),
/// * once the rank reaches `s` the payload rows **are** the original
///   blocks — decoding is free ([`SegmentBuffer::decoded`]).
///
/// This is the progressive-decoding structure both peers and collectors
/// use; the paper's O(s) per-block decoding cost corresponds to the
/// amortised elimination work here.
///
/// # Examples
///
/// ```
/// use gossamer_rlnc::{SegmentBuffer, SegmentId, SegmentParams, SourceSegment};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = SegmentParams::new(3, 8)?;
/// let blocks: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 1; 8]).collect();
/// let src = SourceSegment::new(SegmentId::new(1), params, blocks.clone())?;
/// let mut rng = StdRng::seed_from_u64(2);
///
/// let mut buf = SegmentBuffer::new(SegmentId::new(1), params);
/// while !buf.is_full() {
///     buf.insert(src.emit(&mut rng))?;
/// }
/// assert_eq!(buf.decoded().unwrap(), &blocks[..]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentBuffer {
    id: SegmentId,
    params: SegmentParams,
    /// Rows sorted by pivot column, maintained in reduced echelon form.
    rows: Vec<Row>,
}

impl SegmentBuffer {
    /// Creates an empty buffer for one segment.
    #[must_use]
    pub fn new(id: SegmentId, params: SegmentParams) -> Self {
        Self {
            id,
            params,
            rows: Vec::with_capacity(params.segment_size()),
        }
    }

    /// The segment this buffer tracks.
    #[must_use]
    pub const fn id(&self) -> SegmentId {
        self.id
    }

    /// The coding parameters.
    #[must_use]
    pub const fn params(&self) -> SegmentParams {
        self.params
    }

    /// Current rank: the number of linearly independent blocks buffered.
    #[must_use]
    pub const fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the buffer holds no blocks.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns `true` when the rank equals the segment size, i.e. the
    /// segment is decodable.
    #[must_use]
    pub const fn is_full(&self) -> bool {
        self.rows.len() == self.params.segment_size()
    }

    /// Offers a coded block; reduces it against the buffered rows and
    /// keeps it only if innovative.
    ///
    /// # Errors
    ///
    /// Returns an error if the block belongs to a different segment or
    /// does not match the configured parameters.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (row reduction keeps
    /// pivot bookkeeping in bounds); never on valid input.
    pub fn insert(&mut self, block: CodedBlock) -> Result<InsertOutcome, CodingError> {
        if block.segment() != self.id {
            return Err(CodingError::SegmentMismatch {
                expected: self.id,
                got: block.segment(),
            });
        }
        block.validate(&self.params)?;
        let (origin_us, hops) = (block.origin_us(), block.hops());
        let (_, mut coeffs, mut payload) = block.into_parts();

        // Forward-reduce the incoming block against existing rows.
        for row in &self.rows {
            let factor = Gf256::new(coeffs[row.pivot]);
            if factor.is_zero() {
                continue;
            }
            slice::axpy(&mut coeffs, factor, &row.coeffs);
            slice::axpy(&mut payload, factor, &row.payload);
        }

        // Find the new pivot, if any survives.
        let Some(pivot) = coeffs.iter().position(|&c| c != 0) else {
            return Ok(InsertOutcome::Redundant);
        };

        // Normalise the pivot to one.
        let inv = Gf256::new(coeffs[pivot]).inv().expect("pivot non-zero");
        slice::scale_assign(&mut coeffs, inv);
        slice::scale_assign(&mut payload, inv);

        // Back-eliminate the new pivot column from existing rows so the
        // form stays *reduced*.
        for row in &mut self.rows {
            let factor = Gf256::new(row.coeffs[pivot]);
            if factor.is_zero() {
                continue;
            }
            slice::axpy(&mut row.coeffs, factor, &coeffs);
            slice::axpy(&mut row.payload, factor, &payload);
        }

        let insert_at = self.rows.partition_point(|row| row.pivot < pivot);
        self.rows.insert(
            insert_at,
            Row {
                pivot,
                coeffs,
                payload,
                origin_us,
                hops,
            },
        );
        Ok(InsertOutcome::Innovative {
            rank: self.rows.len(),
        })
    }

    /// Returns `true` if the given coded block would be innovative,
    /// without mutating the buffer.
    #[must_use]
    pub fn would_be_innovative(&self, block: &CodedBlock) -> bool {
        if block.segment() != self.id || block.validate(&self.params).is_err() {
            return false;
        }
        let mut coeffs = block.coefficients().to_vec();
        for row in &self.rows {
            let factor = Gf256::new(coeffs[row.pivot]);
            if factor.is_zero() {
                continue;
            }
            slice::axpy(&mut coeffs, factor, &row.coeffs);
        }
        coeffs.iter().any(|&c| c != 0)
    }

    /// Emits a fresh coded block spanning the buffered subspace: a random
    /// non-zero linear combination of the stored rows, with the header
    /// coefficients composed accordingly.
    ///
    /// The emitted block's provenance is carried forward over the
    /// combined rows: origin timestamp and hop count are the maxima over
    /// the rows, with the hop count incremented for this recoding step.
    ///
    /// Returns `None` if the buffer is empty (nothing to recode).
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (a recoded block is
    /// structurally valid by construction); never on valid input.
    pub fn recode<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CodedBlock> {
        if self.rows.is_empty() {
            return None;
        }
        let s = self.params.segment_size();
        let mut coeffs = vec![0u8; s];
        let mut payload = vec![0u8; self.params.block_len()];
        for row in &self.rows {
            // Non-zero local coefficients guarantee every stored block
            // participates, maximising the innovation probability at the
            // receiver.
            let c = Gf256::random_nonzero(rng);
            slice::axpy(&mut coeffs, c, &row.coeffs);
            slice::axpy(&mut payload, c, &row.payload);
        }
        let (origin_us, hops) = combined_provenance(self.rows.iter());
        Some(
            CodedBlock::new(self.id, coeffs, payload)
                .expect("recoded block is structurally valid")
                .with_provenance(origin_us, hops),
        )
    }

    /// Like [`SegmentBuffer::recode`], but combines only up to `density`
    /// randomly chosen stored rows instead of all of them.
    ///
    /// Sparse recoding trades innovation probability for encoding cost:
    /// combining `d` rows costs `d` `axpy` passes instead of `rank()`,
    /// but the emitted block spans a smaller subspace, so receivers that
    /// already overlap it gain nothing. `density ≥ rank()` degenerates
    /// to dense recoding; `density = 0` returns `None`.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (a recoded block is
    /// structurally valid by construction); never on valid input.
    pub fn recode_sparse<R: Rng + ?Sized>(
        &self,
        density: usize,
        rng: &mut R,
    ) -> Option<CodedBlock> {
        if self.rows.is_empty() || density == 0 {
            return None;
        }
        if density >= self.rows.len() {
            return self.recode(rng);
        }
        // Floyd's algorithm for a uniform `density`-subset of rows.
        let n = self.rows.len();
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - density)..n {
            let t = rng.random_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let s = self.params.segment_size();
        let mut coeffs = vec![0u8; s];
        let mut payload = vec![0u8; self.params.block_len()];
        for &idx in &chosen {
            let c = Gf256::random_nonzero(rng);
            slice::axpy(&mut coeffs, c, &self.rows[idx].coeffs);
            slice::axpy(&mut payload, c, &self.rows[idx].payload);
        }
        let (origin_us, hops) = combined_provenance(chosen.iter().map(|&idx| &self.rows[idx]));
        Some(
            CodedBlock::new(self.id, coeffs, payload)
                .expect("sparse recoded block is structurally valid")
                .with_provenance(origin_us, hops),
        )
    }

    /// Once full rank is reached, returns the decoded original blocks in
    /// order; `None` below full rank.
    ///
    /// Because the rows are kept in *reduced* echelon form, full rank
    /// means the coefficient matrix is the identity and the payload rows
    /// are the originals — no extra solve is needed.
    #[must_use]
    pub fn decoded(&self) -> Option<Vec<&[u8]>> {
        if !self.is_full() {
            return None;
        }
        debug_assert!(self.rows.iter().enumerate().all(|(i, row)| row.pivot == i));
        Some(self.rows.iter().map(|r| r.payload.as_slice()).collect())
    }

    /// Consumes the buffer and returns owned decoded blocks, or the
    /// buffer itself if not yet decodable.
    ///
    /// # Errors
    ///
    /// Returns the untouched buffer back as the error when its rank is
    /// still below the segment size.
    pub fn into_decoded(self) -> Result<Vec<Vec<u8>>, Self> {
        if !self.is_full() {
            return Err(self);
        }
        Ok(self.rows.into_iter().map(|r| r.payload).collect())
    }

    /// The pivot columns currently covered (sorted ascending).
    #[must_use]
    pub fn pivots(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.pivot).collect()
    }

    /// Snapshots every stored row as a coded block, in pivot order.
    ///
    /// Stored rows are themselves valid coded blocks (linear combinations
    /// of receptions), so replaying the returned blocks through
    /// [`SegmentBuffer::insert`] on an empty buffer rebuilds this exact
    /// reduced echelon form — the property the durable checkpoint path
    /// relies on.
    ///
    /// # Panics
    ///
    /// Never in practice: stored rows carry the buffer's own segment id
    /// and shape, so reconstructing them as [`CodedBlock`]s cannot fail.
    #[must_use]
    pub fn row_blocks(&self) -> Vec<CodedBlock> {
        self.rows
            .iter()
            .map(|row| {
                CodedBlock::new(self.id, row.coeffs.clone(), row.payload.clone())
                    .expect("stored rows are structurally valid")
                    .with_provenance(row.origin_us, row.hops)
            })
            .collect()
    }

    /// Removes the `index`-th stored block (in pivot order) and returns
    /// it, decreasing the rank by one.
    ///
    /// Stored rows are themselves valid coded blocks (linear combinations
    /// of receptions), so evicting one — e.g. on TTL expiry — is
    /// equivalent to a block deletion in the protocol. Removing a row
    /// from a reduced echelon form leaves the remaining rows in reduced
    /// echelon form, so no re-elimination is needed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= rank()`.
    pub fn remove_row(&mut self, index: usize) -> CodedBlock {
        assert!(index < self.rows.len(), "row index out of range");
        let row = self.rows.remove(index);
        CodedBlock::new(self.id, row.coeffs, row.payload)
            .expect("stored rows are structurally valid")
            .with_provenance(row.origin_us, row.hops)
    }
}

/// The provenance a recoded block inherits from the rows it combines:
/// the maximum origin timestamp and one past the maximum hop count
/// (saturating — a pathological relay loop must not wrap back to zero).
fn combined_provenance<'a, I: Iterator<Item = &'a Row>>(rows: I) -> (u64, u16) {
    let mut origin_us = 0;
    let mut hops = 0;
    for row in rows {
        origin_us = origin_us.max(row.origin_us);
        hops = hops.max(row.hops);
    }
    (origin_us, hops.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceSegment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(s: usize) -> (SourceSegment, SegmentBuffer, StdRng) {
        let params = SegmentParams::new(s, 32).unwrap();
        let blocks: Vec<Vec<u8>> = (0..s)
            .map(|i| (0..32).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        let src = SourceSegment::new(SegmentId::new(11), params, blocks).unwrap();
        let buf = SegmentBuffer::new(SegmentId::new(11), params);
        (src, buf, StdRng::seed_from_u64(77))
    }

    #[test]
    fn fills_to_rank_s_and_decodes() {
        let (src, mut buf, mut rng) = setup(8);
        let mut insertions = 0;
        while !buf.is_full() {
            let outcome = buf.insert(src.emit(&mut rng)).unwrap();
            insertions += 1;
            if outcome.is_innovative() {
                assert!(buf.rank() <= 8);
            }
            assert!(insertions < 100, "rank must reach s quickly");
        }
        let decoded = buf.decoded().unwrap();
        assert_eq!(decoded.len(), 8);
        for (got, want) in decoded.iter().zip(src.blocks()) {
            assert_eq!(*got, &want[..]);
        }
    }

    #[test]
    fn redundant_blocks_are_rejected() {
        let (src, mut buf, mut rng) = setup(4);
        buf.insert(src.emit(&mut rng)).unwrap();
        // A recode of a rank-1 buffer can never be innovative to itself.
        let recoded = buf.recode(&mut rng).unwrap();
        assert!(!buf.would_be_innovative(&recoded));
        assert_eq!(buf.insert(recoded).unwrap(), InsertOutcome::Redundant);
        assert_eq!(buf.rank(), 1);
    }

    #[test]
    fn relay_chain_preserves_data() {
        // source -> relay1 -> relay2 -> sink, with each relay forwarding
        // recoded blocks only.
        let (src, mut relay1, mut rng) = setup(6);
        let params = relay1.params();
        while !relay1.is_full() {
            relay1.insert(src.emit(&mut rng)).unwrap();
        }
        let mut relay2 = SegmentBuffer::new(SegmentId::new(11), params);
        while !relay2.is_full() {
            relay2.insert(relay1.recode(&mut rng).unwrap()).unwrap();
        }
        let mut sink = SegmentBuffer::new(SegmentId::new(11), params);
        while !sink.is_full() {
            sink.insert(relay2.recode(&mut rng).unwrap()).unwrap();
        }
        let decoded = sink.into_decoded().unwrap();
        assert_eq!(decoded.len(), 6);
        for (got, want) in decoded.iter().zip(src.blocks()) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn partial_rank_recode_spans_subspace_only() {
        let (src, mut relay, mut rng) = setup(5);
        // Give the relay only 2 innovative blocks.
        while relay.rank() < 2 {
            relay.insert(src.emit(&mut rng)).unwrap();
        }
        // A sink fed only by this relay can never exceed rank 2.
        let mut sink = SegmentBuffer::new(SegmentId::new(11), relay.params());
        for _ in 0..50 {
            sink.insert(relay.recode(&mut rng).unwrap()).unwrap();
        }
        assert_eq!(sink.rank(), 2);
        assert!(sink.decoded().is_none());
    }

    #[test]
    fn rejects_foreign_segments_and_bad_shapes() {
        let (_, mut buf, _) = setup(3);
        let foreign = CodedBlock::new(SegmentId::new(99), vec![1, 0, 0], vec![0; 32]).unwrap();
        assert!(matches!(
            buf.insert(foreign),
            Err(CodingError::SegmentMismatch { .. })
        ));
        let wrong_width = CodedBlock::new(SegmentId::new(11), vec![1, 0], vec![0; 32]).unwrap();
        assert!(matches!(
            buf.insert(wrong_width),
            Err(CodingError::WrongCoefficientCount { .. })
        ));
        let wrong_len = CodedBlock::new(SegmentId::new(11), vec![1, 0, 0], vec![0; 31]).unwrap();
        assert!(matches!(
            buf.insert(wrong_len),
            Err(CodingError::WrongBlockLength { .. })
        ));
    }

    #[test]
    fn zero_block_is_redundant_not_an_error() {
        let (_, mut buf, _) = setup(3);
        let zero = CodedBlock::new(SegmentId::new(11), vec![0, 0, 0], vec![0; 32]).unwrap();
        assert_eq!(buf.insert(zero).unwrap(), InsertOutcome::Redundant);
    }

    #[test]
    fn empty_buffer_has_nothing_to_recode() {
        let (_, buf, mut rng) = setup(3);
        assert!(buf.recode(&mut rng).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn into_decoded_returns_buffer_when_incomplete() {
        let (src, mut buf, mut rng) = setup(3);
        buf.insert(src.emit(&mut rng)).unwrap();
        let buf = buf.into_decoded().unwrap_err();
        assert_eq!(buf.rank(), 1);
    }

    #[test]
    fn systematic_fill_decodes_in_order() {
        let (src, mut buf, _) = setup(4);
        for i in (0..4).rev() {
            buf.insert(src.emit_systematic(i)).unwrap();
        }
        assert_eq!(buf.pivots(), vec![0, 1, 2, 3]);
        let decoded = buf.decoded().unwrap();
        for (got, want) in decoded.iter().zip(src.blocks()) {
            assert_eq!(*got, &want[..]);
        }
    }

    #[test]
    fn sparse_recode_stays_in_span_and_decodes() {
        let (src, mut relay, mut rng) = setup(8);
        while !relay.is_full() {
            relay.insert(src.emit(&mut rng)).unwrap();
        }
        // Sparse blocks must still lie in the segment's span, and enough
        // of them still decode the segment.
        let mut sink = SegmentBuffer::new(SegmentId::new(11), relay.params());
        let mut sent = 0;
        while !sink.is_full() {
            let block = relay.recode_sparse(3, &mut rng).unwrap();
            // Each sparse block touches at most 3 stored rows, but the
            // stored rows are dense combinations, so the header can be
            // dense — only the *cost* is sparse. Verify decodability.
            sink.insert(block).unwrap();
            sent += 1;
            assert!(sent < 200, "sparse blocks must eventually fill the sink");
        }
        let decoded = sink.decoded().unwrap();
        for (got, want) in decoded.iter().zip(src.blocks()) {
            assert_eq!(*got, &want[..]);
        }
    }

    #[test]
    fn sparse_recode_edge_cases() {
        let (src, mut buf, mut rng) = setup(4);
        assert!(buf.recode_sparse(2, &mut rng).is_none(), "empty buffer");
        buf.insert(src.emit(&mut rng)).unwrap();
        assert!(buf.recode_sparse(0, &mut rng).is_none(), "zero density");
        // density >= rank falls back to dense recoding.
        let block = buf.recode_sparse(10, &mut rng).unwrap();
        assert_eq!(block.segment(), buf.id());
    }

    #[test]
    fn remove_row_keeps_reduced_form_and_reversibility() {
        let (src, mut buf, mut rng) = setup(5);
        while !buf.is_full() {
            buf.insert(src.emit(&mut rng)).unwrap();
        }
        let evicted = buf.remove_row(2);
        assert_eq!(buf.rank(), 4);
        assert_eq!(evicted.segment(), buf.id());
        // Remaining pivots are still strictly increasing.
        let pivots = buf.pivots();
        assert!(pivots.windows(2).all(|w| w[0] < w[1]));
        // The evicted row re-inserts cleanly and restores full rank.
        assert!(buf.insert(evicted).unwrap().is_innovative());
        assert!(buf.is_full());
        let decoded = buf.decoded().unwrap();
        for (got, want) in decoded.iter().zip(src.blocks()) {
            assert_eq!(*got, &want[..]);
        }
    }

    #[test]
    #[should_panic(expected = "row index out of range")]
    fn remove_row_out_of_range_panics() {
        let (_, mut buf, _) = setup(3);
        let _ = buf.remove_row(0);
    }

    #[test]
    fn recode_carries_provenance_as_max_plus_hop_increment() {
        let (src, mut buf, mut rng) = setup(4);
        for (i, (origin, hops)) in [(100, 0), (400, 2), (250, 1), (50, 5)].iter().enumerate() {
            buf.insert(src.emit_systematic(i).with_provenance(*origin, *hops))
                .unwrap();
        }
        let recoded = buf.recode(&mut rng).unwrap();
        assert_eq!(recoded.origin_us(), 400, "max origin over combined rows");
        assert_eq!(recoded.hops(), 6, "max hop count plus this recoding step");
        // Sparse recoding aggregates over the chosen subset only, so the
        // result is bounded by the dense answer.
        let sparse = buf.recode_sparse(2, &mut rng).unwrap();
        assert!(sparse.origin_us() <= 400);
        assert!((1..=6).contains(&sparse.hops()));
    }

    #[test]
    fn rows_remember_their_provenance_through_snapshot_and_eviction() {
        let (src, mut buf, _) = setup(3);
        for i in 0..3 {
            buf.insert(src.emit_systematic(i).with_provenance(10 + i as u64, i as u16))
                .unwrap();
        }
        let snapshot = buf.row_blocks();
        assert_eq!(snapshot.len(), 3);
        for (i, block) in snapshot.iter().enumerate() {
            assert_eq!(block.origin_us(), 10 + i as u64);
            assert_eq!(block.hops(), i as u16);
        }
        let evicted = buf.remove_row(1);
        assert_eq!(evicted.origin_us(), 11);
        assert_eq!(evicted.hops(), 1);
    }

    #[test]
    fn hop_carry_saturates_instead_of_wrapping() {
        let (src, mut buf, mut rng) = setup(2);
        buf.insert(src.emit_systematic(0).with_provenance(1, u16::MAX))
            .unwrap();
        let recoded = buf.recode(&mut rng).unwrap();
        assert_eq!(recoded.hops(), u16::MAX);
    }

    #[test]
    fn non_coding_case_single_block() {
        let params = SegmentParams::new(1, 16).unwrap();
        let src = SourceSegment::new(SegmentId::new(2), params, vec![vec![0xAB; 16]]).unwrap();
        let mut buf = SegmentBuffer::new(SegmentId::new(2), params);
        let mut rng = StdRng::seed_from_u64(5);
        buf.insert(src.emit(&mut rng)).unwrap();
        assert!(buf.is_full());
        assert_eq!(buf.decoded().unwrap()[0], &[0xAB; 16][..]);
    }
}
