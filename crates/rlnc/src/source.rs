//! The source side of the code: a peer's own original segment.

use gossamer_gf256::{slice, Gf256};
use rand::{Rng, RngExt};

use crate::{CodedBlock, CodingError, SegmentId, SegmentParams};

/// A segment of `s` original blocks held by the peer that generated them.
///
/// The source can emit arbitrarily many coded blocks, each a fresh random
/// linear combination of all `s` originals (so every emission is
/// innovative to any receiver below full rank with probability
/// `≥ 1 − s/256`). Systematic emission is also supported for the
/// non-coding baseline and for latency-free first copies.
#[derive(Debug, Clone)]
pub struct SourceSegment {
    id: SegmentId,
    params: SegmentParams,
    blocks: Vec<Vec<u8>>,
}

impl SourceSegment {
    /// Wraps `s` original blocks as a source segment.
    ///
    /// # Errors
    ///
    /// Returns an error if the block count differs from
    /// `params.segment_size()` or any block length differs from
    /// `params.block_len()`.
    pub fn new(
        id: SegmentId,
        params: SegmentParams,
        blocks: Vec<Vec<u8>>,
    ) -> Result<Self, CodingError> {
        if blocks.len() != params.segment_size() {
            return Err(CodingError::WrongBlockCount {
                expected: params.segment_size(),
                got: blocks.len(),
            });
        }
        for b in &blocks {
            if b.len() != params.block_len() {
                return Err(CodingError::WrongBlockLength {
                    expected: params.block_len(),
                    got: b.len(),
                });
            }
        }
        Ok(Self { id, params, blocks })
    }

    /// The segment identifier.
    #[must_use]
    pub const fn id(&self) -> SegmentId {
        self.id
    }

    /// The coding parameters.
    #[must_use]
    pub const fn params(&self) -> SegmentParams {
        self.params
    }

    /// The original blocks.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Emits one coded block with fresh random coefficients.
    ///
    /// Coefficients are drawn uniformly from the whole field; the paper's
    /// analysis assumes exactly this (a random linear combination of all
    /// `s` originals).
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (an emitted block is
    /// structurally valid by construction); never on valid input.
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> CodedBlock {
        let s = self.params.segment_size();
        let mut coeffs = vec![0u8; s];
        // Reject the all-zero vector, which carries no information.
        loop {
            rng.fill(&mut coeffs[..]);
            if coeffs.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = vec![0u8; self.params.block_len()];
        for (i, block) in self.blocks.iter().enumerate() {
            slice::axpy(&mut payload, Gf256::new(coeffs[i]), block);
        }
        CodedBlock::new(self.id, coeffs, payload).expect("source emission is structurally valid")
    }

    /// Emits one coded block combining only `density` randomly chosen
    /// original blocks (sparse source coding).
    ///
    /// Encoding cost drops from `s` to `density` `axpy` passes; the
    /// price is a higher chance that two sparse blocks overlap in a
    /// smaller subspace. `density ≥ s` degenerates to [`SourceSegment::emit`].
    ///
    /// # Panics
    ///
    /// Panics if `density == 0`.
    pub fn emit_sparse<R: Rng + ?Sized>(&self, density: usize, rng: &mut R) -> CodedBlock {
        assert!(density > 0, "density must be at least 1");
        let s = self.params.segment_size();
        if density >= s {
            return self.emit(rng);
        }
        // Floyd's algorithm for a uniform subset of original blocks.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (s - density)..s {
            let t = rng.random_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut coeffs = vec![0u8; s];
        let mut payload = vec![0u8; self.params.block_len()];
        for &i in &chosen {
            let c = Gf256::random_nonzero(rng);
            coeffs[i] = c.value();
            slice::axpy(&mut payload, c, &self.blocks[i]);
        }
        CodedBlock::new(self.id, coeffs, payload).expect("sparse emission is structurally valid")
    }

    /// Emits the `i`-th original block as a systematic coded block (unit
    /// coefficient vector).
    ///
    /// # Panics
    ///
    /// Panics if `i >= segment_size`.
    #[must_use]
    pub fn emit_systematic(&self, i: usize) -> CodedBlock {
        let s = self.params.segment_size();
        assert!(i < s, "systematic index out of range");
        let mut coeffs = vec![0u8; s];
        coeffs[i] = 1;
        CodedBlock::new(self.id, coeffs, self.blocks[i].clone())
            .expect("systematic emission is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> SegmentParams {
        SegmentParams::new(4, 16).unwrap()
    }

    fn blocks() -> Vec<Vec<u8>> {
        (0..4).map(|i| vec![(i * 17) as u8; 16]).collect()
    }

    #[test]
    fn construction_validates_shape() {
        let p = params();
        assert!(SourceSegment::new(SegmentId::new(1), p, blocks()).is_ok());
        assert!(matches!(
            SourceSegment::new(SegmentId::new(1), p, blocks()[..3].to_vec()),
            Err(CodingError::WrongBlockCount {
                expected: 4,
                got: 3
            })
        ));
        let mut bad = blocks();
        bad[2] = vec![0; 15];
        assert!(matches!(
            SourceSegment::new(SegmentId::new(1), p, bad),
            Err(CodingError::WrongBlockLength {
                expected: 16,
                got: 15
            })
        ));
    }

    #[test]
    fn emission_matches_manual_combination() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let block = src.emit(&mut rng);
            assert_eq!(block.segment(), SegmentId::new(5));
            assert!(!block.is_zero());
            let mut expected = vec![0u8; 16];
            for (i, orig) in blocks().iter().enumerate() {
                slice::axpy(&mut expected, block.coefficient(i), orig);
            }
            assert_eq!(block.payload(), &expected[..]);
        }
    }

    #[test]
    fn sparse_emission_touches_at_most_density_blocks() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let block = src.emit_sparse(2, &mut rng);
            let nonzero = block.coefficients().iter().filter(|&&c| c != 0).count();
            assert!((1..=2).contains(&nonzero), "nonzero coeffs: {nonzero}");
            // Payload still matches the declared combination.
            let mut expected = vec![0u8; 16];
            for (i, orig) in blocks().iter().enumerate() {
                slice::axpy(&mut expected, block.coefficient(i), orig);
            }
            assert_eq!(block.payload(), &expected[..]);
        }
    }

    #[test]
    fn sparse_emissions_decode_with_modest_overhead() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut buf = crate::SegmentBuffer::new(SegmentId::new(5), params());
        let mut emissions = 0;
        while !buf.is_full() {
            buf.insert(src.emit_sparse(2, &mut rng)).unwrap();
            emissions += 1;
            assert!(emissions < 60, "sparse source must still fill rank");
        }
        assert_eq!(buf.decoded().unwrap().len(), 4);
    }

    #[test]
    #[should_panic(expected = "density must be at least 1")]
    fn sparse_zero_density_panics() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = src.emit_sparse(0, &mut rng);
    }

    #[test]
    fn systematic_emission_is_identity() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        for i in 0..4 {
            let block = src.emit_systematic(i);
            assert!(block.is_systematic());
            assert_eq!(block.payload(), &blocks()[i][..]);
            assert_eq!(block.coefficient(i), Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "systematic index out of range")]
    fn systematic_out_of_range_panics() {
        let src = SourceSegment::new(SegmentId::new(5), params(), blocks()).unwrap();
        let _ = src.emit_systematic(4);
    }

    #[test]
    fn non_coding_segment_size_one() {
        let p = SegmentParams::new(1, 8).unwrap();
        let src = SourceSegment::new(SegmentId::new(9), p, vec![vec![7u8; 8]]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let b = src.emit(&mut rng);
        // With s = 1 every emission is a non-zero scalar multiple of the
        // single original block.
        assert_eq!(b.segment_size(), 1);
        assert!(!b.is_zero());
    }
}
