//! Systematic Reed–Solomon erasure coding over GF(2⁸).
//!
//! The paper's related work contrasts RLNC-based buffering with
//! *decentralized erasure codes* for distributed storage (Dimakis et
//! al., refs [3], [4]). This module provides that baseline: a fixed-rate
//! `(n, k)` systematic code built from a Cauchy matrix — any `k` of the
//! `n` shares reconstruct the original blocks.
//!
//! The contrast with RLNC that motivates the paper's choice: an RS share
//! is fixed at encode time, so a relay holding some shares can only
//! *forward* them — two relays holding the same share contribute one
//! share's worth of information. RLNC relays *recode*, so every
//! transmission is a fresh combination; see
//! [`SegmentBuffer::recode`](crate::SegmentBuffer::recode). The
//! `rs_shares_do_not_recode` test below pins that difference down.
//!
//! # Examples
//!
//! ```
//! use gossamer_rlnc::ReedSolomon;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rs = ReedSolomon::new(4, 7)?; // tolerate any 3 losses
//! let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let shares = rs.encode(&blocks)?;
//! assert_eq!(shares.len(), 7);
//!
//! // Lose shares 0, 2 and 5; reconstruct from the rest.
//! let kept: Vec<(usize, &[u8])> = [1usize, 3, 4, 6]
//!     .iter()
//!     .map(|&i| (i, shares[i].as_slice()))
//!     .collect();
//! let recovered = rs.reconstruct(&kept)?;
//! assert_eq!(recovered, blocks);
//! # Ok(())
//! # }
//! ```

use core::fmt;

use gossamer_gf256::{slice, Gf256, Matrix};

/// Errors from Reed–Solomon coding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RsError {
    /// Parameters outside `1 ≤ k ≤ n ≤ 255`.
    BadParameters {
        /// Data shares.
        k: usize,
        /// Total shares.
        n: usize,
    },
    /// Wrong number of input blocks (must be exactly `k`).
    WrongBlockCount {
        /// Expected block count (`k`).
        expected: usize,
        /// Provided block count.
        got: usize,
    },
    /// Input blocks have differing lengths.
    RaggedBlocks,
    /// Fewer than `k` distinct shares were provided.
    NotEnoughShares {
        /// Shares needed (`k`).
        needed: usize,
        /// Distinct shares provided.
        got: usize,
    },
    /// A share index is out of range or repeated.
    BadShareIndex {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadParameters { k, n } => {
                write!(f, "invalid reed-solomon parameters k={k} n={n}")
            }
            Self::WrongBlockCount { expected, got } => {
                write!(f, "expected {expected} blocks, got {got}")
            }
            Self::RaggedBlocks => write!(f, "blocks must have equal lengths"),
            Self::NotEnoughShares { needed, got } => {
                write!(f, "need {needed} distinct shares, got {got}")
            }
            Self::BadShareIndex { index } => {
                write!(f, "share index {index} out of range or repeated")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic `(n, k)` Reed–Solomon code: shares `0..k` are the data
/// blocks verbatim, shares `k..n` are Cauchy-matrix parity.
///
/// Any `k` distinct shares reconstruct the data (the Cauchy construction
/// guarantees every `k × k` submatrix of the generator is invertible).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// Parity rows only ((n−k) × k); data rows are the implicit identity.
    parity: Matrix,
}

impl ReedSolomon {
    /// Builds the code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (a Cauchy matrix is
    /// always invertible over GF(2⁸)); never on valid input.
    pub fn new(k: usize, n: usize) -> Result<Self, RsError> {
        if k == 0 || k > n || n > 255 {
            return Err(RsError::BadParameters { k, n });
        }
        // Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = k+i,
        // y_j = j: the two index sets are disjoint, so x_i + y_j ≠ 0 in
        // characteristic 2 and every entry is well defined.
        let rows = n - k;
        let mut parity = Matrix::zero(rows, k);
        for i in 0..rows {
            for j in 0..k {
                let x = Gf256::new((k + i) as u8);
                let y = Gf256::new(j as u8);
                let denominator = x + y;
                parity.set(i, j, denominator.inv().expect("x_i + y_j is non-zero"));
            }
        }
        Ok(Self { k, n, parity })
    }

    /// Data shares `k`.
    #[must_use]
    pub const fn data_shares(&self) -> usize {
        self.k
    }

    /// Total shares `n`.
    #[must_use]
    pub const fn total_shares(&self) -> usize {
        self.n
    }

    /// Losses tolerated (`n − k`).
    #[must_use]
    pub const fn parity_shares(&self) -> usize {
        self.n - self.k
    }

    /// Encodes `k` equal-length blocks into `n` shares (the first `k`
    /// are the blocks themselves).
    ///
    /// # Errors
    ///
    /// Returns an error for a wrong block count or ragged lengths.
    pub fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if blocks.len() != self.k {
            return Err(RsError::WrongBlockCount {
                expected: self.k,
                got: blocks.len(),
            });
        }
        let len = blocks.first().map_or(0, Vec::len);
        if blocks.iter().any(|b| b.len() != len) {
            return Err(RsError::RaggedBlocks);
        }
        let mut shares: Vec<Vec<u8>> = blocks.to_vec();
        for i in 0..(self.n - self.k) {
            let mut parity = vec![0u8; len];
            for (j, block) in blocks.iter().enumerate() {
                slice::axpy(&mut parity, self.parity.get(i, j), block);
            }
            shares.push(parity);
        }
        Ok(shares)
    }

    /// The generator row for share `index` (identity for data shares).
    fn generator_row(&self, index: usize) -> Vec<u8> {
        let mut row = vec![0u8; self.k];
        if index < self.k {
            row[index] = 1;
        } else {
            row.copy_from_slice(self.parity.row(index - self.k));
        }
        row
    }

    /// Reconstructs the original `k` blocks from any `k` distinct shares
    /// given as `(share_index, bytes)` pairs. Extra shares are ignored.
    ///
    /// # Errors
    ///
    /// Returns an error for too few distinct shares, out-of-range or
    /// repeated indices, or ragged share lengths.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (any `k` distinct
    /// shares of a Cauchy code determine the data); never on valid
    /// input.
    pub fn reconstruct(&self, shares: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>, RsError> {
        let mut seen = vec![false; self.n];
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        for &(index, bytes) in shares {
            if index >= self.n || seen[index] {
                return Err(RsError::BadShareIndex { index });
            }
            seen[index] = true;
            if chosen.len() < self.k {
                chosen.push((index, bytes));
            }
        }
        if chosen.len() < self.k {
            return Err(RsError::NotEnoughShares {
                needed: self.k,
                got: chosen.len(),
            });
        }
        let len = chosen[0].1.len();
        if chosen.iter().any(|(_, b)| b.len() != len) {
            return Err(RsError::RaggedBlocks);
        }
        // Solve G_sub · X = S for the data matrix X.
        let mut g = Matrix::zero(self.k, self.k);
        let mut s = Matrix::zero(self.k, len);
        for (row, &(index, bytes)) in chosen.iter().enumerate() {
            g.row_mut(row).copy_from_slice(&self.generator_row(index));
            s.row_mut(row).copy_from_slice(bytes);
        }
        let solved = g
            .solve(&s)
            .expect("every k x k Cauchy-extended submatrix is invertible");
        Ok((0..self.k).map(|r| solved.row(r).to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_blocks(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn systematic_prefix_is_the_data() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let blocks = vec![vec![1u8; 8], vec![2u8; 8], vec![3u8; 8]];
        let shares = rs.encode(&blocks).unwrap();
        assert_eq!(&shares[..3], &blocks[..]);
        assert_eq!(rs.data_shares(), 3);
        assert_eq!(rs.total_shares(), 6);
        assert_eq!(rs.parity_shares(), 3);
    }

    #[test]
    fn every_k_subset_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let rs = ReedSolomon::new(4, 8).unwrap();
        let blocks = random_blocks(&mut rng, 4, 32);
        let shares = rs.encode(&blocks).unwrap();
        // All C(8,4) = 70 subsets.
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    for d in (c + 1)..8 {
                        let kept: Vec<(usize, &[u8])> = [a, b, c, d]
                            .iter()
                            .map(|&i| (i, shares[i].as_slice()))
                            .collect();
                        let got = rs.reconstruct(&kept).unwrap();
                        assert_eq!(got, blocks, "subset {:?}", [a, b, c, d]);
                    }
                }
            }
        }
    }

    #[test]
    fn extra_shares_are_ignored() {
        let mut rng = StdRng::seed_from_u64(2);
        let rs = ReedSolomon::new(2, 5).unwrap();
        let blocks = random_blocks(&mut rng, 2, 16);
        let shares = rs.encode(&blocks).unwrap();
        let all: Vec<(usize, &[u8])> = shares
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect();
        assert_eq!(rs.reconstruct(&all).unwrap(), blocks);
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(4, 256).is_err());
        assert!(ReedSolomon::new(1, 1).is_ok());
        assert!(ReedSolomon::new(200, 255).is_ok());
    }

    #[test]
    fn input_validation() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        assert!(matches!(
            rs.encode(&[vec![1], vec![2]]),
            Err(RsError::WrongBlockCount {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            rs.encode(&[vec![1], vec![2], vec![3, 4]]),
            Err(RsError::RaggedBlocks)
        ));
        let blocks = vec![vec![1u8; 4], vec![2u8; 4], vec![3u8; 4]];
        let shares = rs.encode(&blocks).unwrap();
        assert!(matches!(
            rs.reconstruct(&[(0, shares[0].as_slice()), (1, shares[1].as_slice())]),
            Err(RsError::NotEnoughShares { needed: 3, got: 2 })
        ));
        assert!(matches!(
            rs.reconstruct(&[
                (0, shares[0].as_slice()),
                (0, shares[0].as_slice()),
                (1, shares[1].as_slice())
            ]),
            Err(RsError::BadShareIndex { index: 0 })
        ));
        assert!(matches!(
            rs.reconstruct(&[
                (9, shares[0].as_slice()),
                (1, shares[1].as_slice()),
                (2, shares[2].as_slice())
            ]),
            Err(RsError::BadShareIndex { index: 9 })
        ));
    }

    /// The structural difference that motivates RLNC over fixed-rate
    /// erasure codes in this protocol: combining RS shares at a relay
    /// does not produce another RS share, so relays can only forward —
    /// duplicated shares add no information. RLNC recoding keeps every
    /// transmission useful.
    #[test]
    fn rs_shares_do_not_recode() {
        use crate::{SegmentBuffer, SegmentId, SegmentParams, SourceSegment};
        let mut rng = StdRng::seed_from_u64(3);

        // RS: a receiver holding share 1 twice has exactly one share's
        // information — a second copy is pure redundancy.
        let rs = ReedSolomon::new(2, 4).unwrap();
        let blocks = random_blocks(&mut rng, 2, 8);
        let shares = rs.encode(&blocks).unwrap();
        let dup = [(1usize, shares[1].as_slice()), (1, shares[1].as_slice())];
        assert!(rs.reconstruct(&dup).is_err(), "duplicate share rejected");

        // RLNC: two *independent recodings* from the same rank-2 relay
        // are (whp) jointly decodable — the relay manufactures fresh
        // information-bearing combinations on demand.
        let params = SegmentParams::new(2, 8).unwrap();
        let src = SourceSegment::new(SegmentId::new(1), params, blocks.clone()).unwrap();
        let mut relay = SegmentBuffer::new(SegmentId::new(1), params);
        while !relay.is_full() {
            relay.insert(src.emit(&mut rng)).unwrap();
        }
        let mut sink = SegmentBuffer::new(SegmentId::new(1), params);
        let mut attempts = 0;
        while !sink.is_full() {
            sink.insert(relay.recode(&mut rng).unwrap()).unwrap();
            attempts += 1;
            assert!(attempts < 20);
        }
        assert_eq!(
            sink.decoded().unwrap(),
            blocks.iter().map(Vec::as_slice).collect::<Vec<_>>()
        );
    }
}
