//! Decoder instrumentation: registry handles updated on the receive path.

use gossamer_obs::{names, Counter, Gauge, Registry};

/// The decoder's handles into an observability registry.
///
/// Attached to a [`Decoder`](crate::Decoder) via
/// [`Decoder::attach_metrics`](crate::Decoder::attach_metrics), these
/// publish the rank-evolution view of decoding: every innovative /
/// redundant block reception increments a counter, and the two gauges
/// track how many segments are mid-decode and their summed rank — the
/// live coupon-collector progress curve the paper's Section 4 analyses.
///
/// Every update is a relaxed atomic operation; attaching metrics adds
/// no locking or allocation to the per-block hot path.
#[derive(Debug, Clone)]
pub struct DecoderMetrics {
    pub(crate) innovative: Counter,
    pub(crate) redundant: Counter,
    pub(crate) segments_decoded: Counter,
    pub(crate) segments_in_progress: Gauge,
    pub(crate) in_progress_rank: Gauge,
}

impl DecoderMetrics {
    /// Registers (or retrieves) the decoder's metrics in `registry`.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self {
            innovative: registry.counter(
                names::DECODER_BLOCKS_INNOVATIVE,
                "coded blocks that raised some segment's decode rank",
            ),
            redundant: registry.counter(
                names::DECODER_BLOCKS_REDUNDANT,
                "coded blocks discarded as linearly dependent or already decoded",
            ),
            segments_decoded: registry
                .counter(names::DECODER_SEGMENTS_DECODED, "segments fully decoded"),
            segments_in_progress: registry.gauge(
                names::DECODER_SEGMENTS_IN_PROGRESS,
                "segments currently mid-decode",
            ),
            in_progress_rank: registry.gauge(
                names::DECODER_IN_PROGRESS_RANK,
                "summed rank over all in-progress segments",
            ),
        }
    }
}
