//! The collector-side multi-segment decoder.

use std::collections::HashMap;

use crate::{
    CodedBlock, CodingError, DecoderMetrics, InsertOutcome, SegmentBuffer, SegmentId, SegmentParams,
};

/// A fully decoded segment: the original blocks, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment {
    id: SegmentId,
    blocks: Vec<Vec<u8>>,
}

impl DecodedSegment {
    /// The segment identifier.
    #[must_use]
    pub const fn id(&self) -> SegmentId {
        self.id
    }

    /// The decoded original blocks in injection order.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Consumes the segment, returning its blocks.
    #[must_use]
    pub fn into_blocks(self) -> Vec<Vec<u8>> {
        self.blocks
    }
}

/// Crate-internal constructor used by
/// [`DecodedSegment::from_blocks`](crate::DecodedSegment::from_blocks).
pub const fn decoded_segment_from_parts(id: SegmentId, blocks: Vec<Vec<u8>>) -> DecodedSegment {
    DecodedSegment { id, blocks }
}

/// Counters describing a decoder's life so far.
///
/// `redundant` counts blocks that didn't raise any segment's rank —
/// the "wasted pulls" whose rate Theorem 2 ties to the segment size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DecoderStats {
    /// Blocks that increased some segment's rank.
    pub innovative: usize,
    /// Blocks that were already in the span of received blocks, or
    /// belonged to an already-decoded segment.
    pub redundant: usize,
    /// Segments fully decoded.
    pub segments_decoded: usize,
}

impl DecoderStats {
    /// Total blocks received.
    #[must_use]
    pub const fn received(&self) -> usize {
        self.innovative + self.redundant
    }

    /// Fraction of received blocks that were innovative (`1.0` when
    /// nothing has been received).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let total = self.received();
        if total == 0 {
            1.0
        } else {
            self.innovative as f64 / total as f64
        }
    }
}

/// Accumulates coded blocks across many segments and emits each segment's
/// original blocks the moment it becomes decodable.
///
/// This is the heart of a logging server in the indirect scheme: blocks
/// arrive from random peers in arbitrary order, interleaved across
/// segments; the decoder performs progressive Gaussian elimination per
/// segment and reports completion exactly once per segment.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Decoder {
    params: SegmentParams,
    in_progress: HashMap<SegmentId, SegmentBuffer>,
    decoded: HashMap<SegmentId, DecodedSegment>,
    abandoned: std::collections::HashSet<SegmentId>,
    stats: DecoderStats,
    metrics: Option<DecoderMetrics>,
}

impl Decoder {
    /// Creates a decoder for a deployment's parameters.
    #[must_use]
    pub fn new(params: SegmentParams) -> Self {
        Self {
            params,
            in_progress: HashMap::new(),
            decoded: HashMap::new(),
            abandoned: std::collections::HashSet::new(),
            stats: DecoderStats::default(),
            metrics: None,
        }
    }

    /// Attaches registry handles; from here on every reception outcome
    /// and rank change is published as it happens. Existing state is
    /// folded in immediately so a decoder instrumented after recovery
    /// starts from its true counters, not from zero.
    pub fn attach_metrics(&mut self, metrics: DecoderMetrics) {
        metrics.innovative.add(self.stats.innovative as u64);
        metrics.redundant.add(self.stats.redundant as u64);
        metrics
            .segments_decoded
            .add(self.stats.segments_decoded as u64);
        self.metrics = Some(metrics);
        self.publish_rank_gauges();
    }

    /// Pushes the current in-progress shape into the attached gauges
    /// (no-op without metrics). Cost is linear in the number of
    /// in-progress segments, which the pull discipline keeps small.
    fn publish_rank_gauges(&self) {
        if let Some(metrics) = &self.metrics {
            metrics
                .segments_in_progress
                .set(self.in_progress.len() as u64);
            metrics
                .in_progress_rank
                .set(self.in_progress_rank_sum() as u64);
        }
    }

    /// The coding parameters.
    #[must_use]
    pub const fn params(&self) -> SegmentParams {
        self.params
    }

    /// Feeds one coded block. Returns `Some(segment)` exactly when this
    /// block completes a segment.
    ///
    /// Blocks for already-decoded segments are counted as redundant and
    /// ignored (the paper's servers likewise keep pulling blindly; the
    /// redundancy shows up as lost throughput, not as an error).
    ///
    /// # Errors
    ///
    /// Returns an error if the block's shape does not match the
    /// deployment parameters.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (a full buffer is
    /// always decodable); never on valid input.
    pub fn receive(&mut self, block: CodedBlock) -> Result<Option<DecodedSegment>, CodingError> {
        block.validate(&self.params)?;
        let id = block.segment();
        if self.decoded.contains_key(&id) || self.abandoned.contains(&id) {
            self.stats.redundant += 1;
            if let Some(metrics) = &self.metrics {
                metrics.redundant.inc();
            }
            return Ok(None);
        }
        let buffer = self
            .in_progress
            .entry(id)
            .or_insert_with(|| SegmentBuffer::new(id, self.params));
        match buffer.insert(block)? {
            InsertOutcome::Redundant => {
                self.stats.redundant += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.redundant.inc();
                }
                Ok(None)
            }
            InsertOutcome::Innovative { .. } => {
                self.stats.innovative += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.innovative.inc();
                }
                let result = if buffer.is_full() {
                    let buffer = self
                        .in_progress
                        .remove(&id)
                        .expect("buffer exists by construction");
                    let blocks = buffer
                        .into_decoded()
                        .unwrap_or_else(|_| unreachable!("buffer was full"));
                    let segment = DecodedSegment { id, blocks };
                    self.decoded.insert(id, segment.clone());
                    self.stats.segments_decoded += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.segments_decoded.inc();
                    }
                    Ok(Some(segment))
                } else {
                    Ok(None)
                };
                self.publish_rank_gauges();
                result
            }
        }
    }

    /// The rank so far for `id`: `s` if decoded, the partial rank if in
    /// progress, zero if unseen.
    pub fn rank_of(&self, id: SegmentId) -> usize {
        if self.decoded.contains_key(&id) {
            self.params.segment_size()
        } else {
            self.in_progress.get(&id).map_or(0, SegmentBuffer::rank)
        }
    }

    /// Returns `true` if the segment has been fully decoded.
    #[must_use]
    pub fn is_decoded(&self, id: SegmentId) -> bool {
        self.decoded.contains_key(&id)
    }

    /// Looks up a decoded segment.
    #[must_use]
    pub fn decoded_segment(&self, id: SegmentId) -> Option<&DecodedSegment> {
        self.decoded.get(&id)
    }

    /// Iterates over all decoded segments (in arbitrary order).
    pub fn iter_decoded(&self) -> impl Iterator<Item = &DecodedSegment> {
        self.decoded.values()
    }

    /// Number of segments currently partially received.
    #[must_use]
    pub fn segments_in_progress(&self) -> usize {
        self.in_progress.len()
    }

    /// Lifetime counters.
    #[must_use]
    pub const fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Marks a segment as handled elsewhere (e.g. decoded by a sibling
    /// collector): partial state is dropped and future blocks of it are
    /// counted as redundant without any elimination work. Returns `true`
    /// if the segment was not already decoded or abandoned here.
    pub fn abandon(&mut self, id: SegmentId) -> bool {
        if self.decoded.contains_key(&id) || !self.abandoned.insert(id) {
            return false;
        }
        self.in_progress.remove(&id);
        self.publish_rank_gauges();
        true
    }

    /// Returns `true` if [`Decoder::abandon`] was called for this
    /// segment.
    #[must_use]
    pub fn is_abandoned(&self, id: SegmentId) -> bool {
        self.abandoned.contains(&id)
    }

    /// Snapshots every in-progress row as a coded block, grouped by
    /// segment in ascending-id order.
    ///
    /// This is the checkpoint export for the durable store: stored rows
    /// are valid coded blocks, so feeding the snapshot back through
    /// [`Decoder::receive`] on a fresh decoder rebuilds the in-flight
    /// elimination state exactly (same ranks, same reduced rows).
    #[must_use]
    pub fn export_in_progress(&self) -> Vec<CodedBlock> {
        let mut ids: Vec<SegmentId> = self.in_progress.keys().copied().collect();
        ids.sort_unstable_by_key(|id| id.raw());
        ids.iter()
            .filter_map(|id| self.in_progress.get(id))
            .flat_map(SegmentBuffer::row_blocks)
            .collect()
    }

    /// Sum of partial ranks across all in-progress segments — the number
    /// of innovative blocks held that have not yet completed a segment.
    #[must_use]
    pub fn in_progress_rank_sum(&self) -> usize {
        self.in_progress.values().map(SegmentBuffer::rank).sum()
    }

    /// Re-registers a segment decoded in a previous incarnation (the
    /// recovery path). The segment joins the dedup index, so future
    /// blocks for it are counted redundant, and `segments_decoded` is
    /// incremented; `innovative`/`redundant` are left untouched because
    /// the blocks that produced it were counted in the previous life.
    ///
    /// Returns `Ok(false)` (keeping the existing copy) if the segment is
    /// already decoded.
    ///
    /// # Errors
    ///
    /// Returns an error if the segment's block shape does not match the
    /// deployment parameters — the store being replayed belongs to a
    /// different deployment.
    pub fn restore_decoded(&mut self, segment: DecodedSegment) -> Result<bool, CodingError> {
        if segment.blocks.len() != self.params.segment_size() {
            return Err(CodingError::WrongBlockCount {
                expected: self.params.segment_size(),
                got: segment.blocks.len(),
            });
        }
        if let Some(block) = segment
            .blocks
            .iter()
            .find(|b| b.len() != self.params.block_len())
        {
            return Err(CodingError::WrongBlockLength {
                expected: self.params.block_len(),
                got: block.len(),
            });
        }
        let id = segment.id;
        if self.decoded.contains_key(&id) {
            return Ok(false);
        }
        self.abandoned.remove(&id);
        self.in_progress.remove(&id);
        self.decoded.insert(id, segment);
        self.stats.segments_decoded += 1;
        if let Some(metrics) = &self.metrics {
            metrics.segments_decoded.inc();
        }
        self.publish_rank_gauges();
        Ok(true)
    }

    /// Iterates over all abandoned segment ids (in arbitrary order).
    pub fn iter_abandoned(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.abandoned.iter().copied()
    }

    /// Drops partial state for segments whose blocks can no longer arrive
    /// (e.g. expired network-wide), returning how many were discarded.
    pub fn prune<F: FnMut(SegmentId) -> bool>(&mut self, mut expired: F) -> usize {
        let before = self.in_progress.len();
        self.in_progress.retain(|&id, _| !expired(id));
        self.publish_rank_gauges();
        before - self.in_progress.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceSegment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> SegmentParams {
        SegmentParams::new(4, 8).unwrap()
    }

    fn source(id: u64) -> SourceSegment {
        let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![(id as u8) * 16 + i as u8; 8]).collect();
        SourceSegment::new(SegmentId::new(id), params(), blocks).unwrap()
    }

    #[test]
    fn decodes_interleaved_segments() {
        let mut rng = StdRng::seed_from_u64(1);
        let sources: Vec<SourceSegment> = (1..=3).map(source).collect();
        let mut decoder = Decoder::new(params());
        let mut done = 0;
        // Round-robin across segments to interleave arrivals.
        'outer: for round in 0..100 {
            for src in &sources {
                if decoder.is_decoded(src.id()) {
                    continue;
                }
                if let Some(seg) = decoder.receive(src.emit(&mut rng)).unwrap() {
                    assert_eq!(seg.blocks(), src.blocks());
                    done += 1;
                    if done == 3 {
                        break 'outer;
                    }
                }
            }
            assert!(round < 99, "all segments must decode");
        }
        assert_eq!(decoder.stats().segments_decoded, 3);
        assert_eq!(decoder.segments_in_progress(), 0);
        assert_eq!(decoder.iter_decoded().count(), 3);
    }

    #[test]
    fn redundant_after_decode_is_counted() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = source(1);
        let mut decoder = Decoder::new(params());
        while !decoder.is_decoded(src.id()) {
            decoder.receive(src.emit(&mut rng)).unwrap();
        }
        let innovative_before = decoder.stats().innovative;
        decoder.receive(src.emit(&mut rng)).unwrap();
        assert_eq!(decoder.stats().innovative, innovative_before);
        assert_eq!(decoder.rank_of(src.id()), 4);
        assert!(decoder.stats().redundant >= 1);
        assert!(decoder.stats().efficiency() < 1.0);
    }

    #[test]
    fn rank_of_unseen_segment_is_zero() {
        let decoder = Decoder::new(params());
        assert_eq!(decoder.rank_of(SegmentId::new(42)), 0);
        assert!(!decoder.is_decoded(SegmentId::new(42)));
        assert!(decoder.decoded_segment(SegmentId::new(42)).is_none());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut decoder = Decoder::new(params());
        let bad = CodedBlock::new(SegmentId::new(1), vec![1, 0], vec![0; 8]).unwrap();
        assert!(decoder.receive(bad).is_err());
    }

    #[test]
    fn prune_discards_matching_partials() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut decoder = Decoder::new(params());
        for id in 1..=4u64 {
            let src = source(id);
            decoder.receive(src.emit(&mut rng)).unwrap();
        }
        assert_eq!(decoder.segments_in_progress(), 4);
        let dropped = decoder.prune(|id| id.raw() % 2 == 0);
        assert_eq!(dropped, 2);
        assert_eq!(decoder.segments_in_progress(), 2);
    }

    #[test]
    fn abandoned_segments_are_skipped() {
        let mut rng = StdRng::seed_from_u64(8);
        let src = source(1);
        let mut decoder = Decoder::new(params());
        decoder.receive(src.emit(&mut rng)).unwrap();
        assert_eq!(decoder.segments_in_progress(), 1);
        assert!(decoder.abandon(src.id()));
        assert!(!decoder.abandon(src.id()), "second abandon is a no-op");
        assert!(decoder.is_abandoned(src.id()));
        assert_eq!(decoder.segments_in_progress(), 0);
        // Further blocks are counted redundant and never decode.
        for _ in 0..10 {
            assert!(decoder.receive(src.emit(&mut rng)).unwrap().is_none());
        }
        assert!(!decoder.is_decoded(src.id()));
        assert!(decoder.stats().redundant >= 10);
    }

    #[test]
    fn abandon_after_decode_is_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let src = source(1);
        let mut decoder = Decoder::new(params());
        while !decoder.is_decoded(src.id()) {
            decoder.receive(src.emit(&mut rng)).unwrap();
        }
        assert!(!decoder.abandon(src.id()), "decoded beats abandoned");
        assert!(decoder.decoded_segment(src.id()).is_some());
    }

    #[test]
    fn attached_metrics_track_rank_evolution() {
        use gossamer_obs::names;
        let registry = gossamer_obs::Registry::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut decoder = Decoder::new(params());
        decoder.attach_metrics(crate::DecoderMetrics::register(&registry));

        let src = source(1);
        decoder.receive(src.emit(&mut rng)).unwrap();
        let mid = registry.snapshot();
        assert_eq!(mid.scalar(names::DECODER_SEGMENTS_IN_PROGRESS), Some(1));
        assert_eq!(mid.scalar(names::DECODER_IN_PROGRESS_RANK), Some(1));

        while !decoder.is_decoded(src.id()) {
            decoder.receive(src.emit(&mut rng)).unwrap();
        }
        decoder.receive(src.emit(&mut rng)).unwrap();

        let done = registry.snapshot();
        assert_eq!(done.scalar(names::DECODER_SEGMENTS_DECODED), Some(1));
        assert_eq!(
            done.scalar(names::DECODER_BLOCKS_INNOVATIVE),
            Some(decoder.stats().innovative as u64),
            "registry must mirror the lifetime stats"
        );
        assert_eq!(
            done.scalar(names::DECODER_BLOCKS_REDUNDANT),
            Some(decoder.stats().redundant as u64)
        );
        assert_eq!(done.scalar(names::DECODER_SEGMENTS_IN_PROGRESS), Some(0));
        assert_eq!(done.scalar(names::DECODER_IN_PROGRESS_RANK), Some(0));
    }

    #[test]
    fn attach_after_recovery_folds_existing_state_in() {
        use gossamer_obs::names;
        let mut rng = StdRng::seed_from_u64(12);
        let src = source(1);
        let mut first = Decoder::new(params());
        while !first.is_decoded(src.id()) {
            first.receive(src.emit(&mut rng)).unwrap();
        }
        let mut restored = Decoder::new(params());
        restored
            .restore_decoded(first.decoded_segment(src.id()).unwrap().clone())
            .unwrap();
        let registry = gossamer_obs::Registry::new();
        restored.attach_metrics(crate::DecoderMetrics::register(&registry));
        assert_eq!(
            registry.snapshot().scalar(names::DECODER_SEGMENTS_DECODED),
            Some(1),
            "recovered segments must be visible at attach time"
        );
    }

    #[test]
    fn stats_efficiency_starts_at_one() {
        let decoder = Decoder::new(params());
        assert_eq!(decoder.stats().efficiency(), 1.0);
        assert_eq!(decoder.stats().received(), 0);
    }
}
