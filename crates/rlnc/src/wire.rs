//! Binary wire format for coded blocks.
//!
//! Version-2 layout (all integers big-endian):
//!
//! ```text
//! +-------+---------+------------+-----+-----------+-----------+------+
//! | magic | version | segment id |  s  | block len | origin us | hops |
//! |  1 B  |   1 B   |    8 B     | 1 B |    4 B    |    8 B    | 2 B  |
//! +-------+---------+------------+-----+-----------+-----------+------+
//! |      coefficients (s B)      |  payload (len B)  |  crc32 (4 B)   |
//! +------------------------------+-------------------+----------------+
//! ```
//!
//! The header embeds the coding coefficients exactly as the paper
//! prescribes ("the coding coefficients used to encode original blocks to
//! x are embedded in the header of the coded block"), plus a CRC-32 so a
//! deployment over real sockets detects corruption instead of feeding
//! garbage into Gaussian elimination.
//!
//! Version 2 appends block **provenance** after the block-length field:
//! the segment's microsecond origin timestamp and a recoding hop
//! counter, feeding the collector's per-segment lifecycle traces. The
//! format is version-gated: [`decode`] and [`peek_frame_len`] still
//! accept version-1 frames (the [`LEGACY_VERSION`] layout without the
//! provenance fields), mapping them to zero provenance, so a rolling
//! upgrade — or a write-ahead log written by an older build — keeps
//! working.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{CodedBlock, SegmentId, WireError};

/// First byte of every frame.
pub const MAGIC: u8 = 0x67; // 'g'
/// Current format version: provenance-carrying frames.
pub const VERSION: u8 = 2;
/// The previous format version, still accepted on decode: identical to
/// version 2 minus the origin-timestamp and hop-count fields.
pub const LEGACY_VERSION: u8 = 1;

/// Hard upper bound on the total size of an accepted frame.
///
/// The length fields in the header are attacker-controlled on a real
/// network: a frame declaring a multi-gigabyte payload must be rejected
/// *before* any buffer is sized from it. 16 MiB is orders of magnitude
/// above any block the protocol produces (`s ≤ 255` coefficients and
/// payloads of a few KiB) while still small enough that a hostile peer
/// cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes before the coefficient vector in a version-1 frame: magic,
/// version, segment id, segment size, block length.
const FIXED_HEADER_V1: usize = 1 + 1 + 8 + 1 + 4;
/// Bytes before the coefficient vector in a version-2 frame: the
/// version-1 header plus the origin timestamp and hop count.
const FIXED_HEADER: usize = FIXED_HEADER_V1 + 8 + 2;
/// Bytes after the payload: the CRC-32 of everything before it.
const TRAILER: usize = 4;

/// The fixed header size for a given version byte, or `None` if the
/// version is unknown.
const fn fixed_header_len(version: u8) -> Option<usize> {
    match version {
        LEGACY_VERSION => Some(FIXED_HEADER_V1),
        VERSION => Some(FIXED_HEADER),
        _ => None,
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

/// Builds [`CRC_TABLE`] with the standard reflected-polynomial
/// bit-at-a-time recurrence (const-evaluable, so it costs nothing at
/// runtime).
const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc; // xtask-ok: index (const-evaluated; i < 256 by the loop bound)
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE) of a byte slice.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        // xtask-ok: index (masked to 0xFF; the table has 256 entries)
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Serialised size of a current-version block with `s` coefficients and
/// `block_len` payload bytes.
#[must_use]
pub const fn frame_len(s: usize, block_len: usize) -> usize {
    FIXED_HEADER + s + block_len + TRAILER
}

/// Serialised size of a [`LEGACY_VERSION`] frame with `s` coefficients
/// and `block_len` payload bytes.
#[must_use]
pub const fn legacy_frame_len(s: usize, block_len: usize) -> usize {
    FIXED_HEADER_V1 + s + block_len + TRAILER
}

/// Serialises a coded block into a self-delimiting current-version
/// frame, provenance included.
#[must_use]
pub fn encode(block: &CodedBlock) -> Bytes {
    let s = block.segment_size();
    let len = frame_len(s, block.payload().len());
    let mut buf = BytesMut::with_capacity(len);
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64(block.segment().raw());
    buf.put_u8(s as u8);
    buf.put_u32(block.payload().len() as u32);
    buf.put_u64(block.origin_us());
    buf.put_u16(block.hops());
    buf.put_slice(block.coefficients());
    buf.put_slice(block.payload());
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Serialises a coded block as a [`LEGACY_VERSION`] frame, dropping its
/// provenance. Kept so compatibility tests (and tools that must speak to
/// pre-provenance builds) can produce byte-exact old-format frames.
#[must_use]
pub fn encode_legacy(block: &CodedBlock) -> Bytes {
    let s = block.segment_size();
    let len = legacy_frame_len(s, block.payload().len());
    let mut buf = BytesMut::with_capacity(len);
    buf.put_u8(MAGIC);
    buf.put_u8(LEGACY_VERSION);
    buf.put_u64(block.segment().raw());
    buf.put_u8(s as u8);
    buf.put_u32(block.payload().len() as u32);
    buf.put_slice(block.coefficients());
    buf.put_slice(block.payload());
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Deserialises a frame produced by [`encode`].
///
/// # Errors
///
/// Returns a [`WireError`] describing the first problem found: bad magic,
/// unsupported version, truncation, a malformed header, or a checksum
/// mismatch.
pub fn decode(mut frame: &[u8]) -> Result<CodedBlock, WireError> {
    let full = frame;
    if frame.len() < FIXED_HEADER_V1 + TRAILER {
        return Err(WireError::Truncated {
            needed: FIXED_HEADER_V1 + TRAILER,
            available: frame.len(),
        });
    }
    let magic = frame.get_u8();
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = frame.get_u8();
    let Some(header_len) = fixed_header_len(version) else {
        return Err(WireError::UnsupportedVersion { version });
    };
    let segment = SegmentId::new(frame.get_u64());
    let s = frame.get_u8() as usize;
    let block_len = frame.get_u32() as usize;
    if s == 0 || block_len == 0 {
        return Err(WireError::MalformedHeader);
    }
    let needed = header_len + s + block_len + TRAILER;
    if needed > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            declared: needed,
            limit: MAX_FRAME_LEN,
        });
    }
    if full.len() < needed {
        return Err(WireError::Truncated {
            needed,
            available: full.len(),
        });
    }
    // Legacy frames carry no provenance; they decode as unstamped.
    let (origin_us, hops) = if version == LEGACY_VERSION {
        (0, 0)
    } else {
        (frame.get_u64(), frame.get_u16())
    };
    let coefficients = frame[..s].to_vec();
    let payload = frame[s..s + block_len].to_vec();
    frame.advance(s + block_len);
    let stored = frame.get_u32();
    let computed = crc32(&full[..needed - TRAILER]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    CodedBlock::new(segment, coefficients, payload)
        .map(|b| b.with_provenance(origin_us, hops))
        .map_err(|_| WireError::MalformedHeader)
}

/// Inspects a partial byte stream and reports how many bytes the frame at
/// its head occupies, or `Ok(None)` if more bytes are needed to tell.
///
/// This is what a streaming reader uses to delimit frames without
/// copying. The header is validated as far as the available bytes allow
/// (magic, version, non-zero dimensions, the [`MAX_FRAME_LEN`] bound), so
/// a reader never sizes a buffer from a length a hostile peer declared.
///
/// # Errors
///
/// Returns a [`WireError`] if the visible prefix already proves the frame
/// invalid: bad magic, unsupported version, a zero dimension, or a
/// declared size beyond [`MAX_FRAME_LEN`].
pub fn peek_frame_len(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if let Some(&magic) = buf.first() {
        if magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
    }
    let Some(&version) = buf.get(1) else {
        return Ok(None);
    };
    let Some(header_len) = fixed_header_len(version) else {
        return Err(WireError::UnsupportedVersion { version });
    };
    // The dimensions sit at the same offsets in both versions; only the
    // total header length differs.
    let Some((header, _)) = buf.split_first_chunk::<FIXED_HEADER_V1>() else {
        return Ok(None);
    };
    let [_, _, _, _, _, _, _, _, _, _, s, b0, b1, b2, b3] = *header;
    let s = s as usize;
    let block_len = u32::from_be_bytes([b0, b1, b2, b3]) as usize;
    if s == 0 || block_len == 0 {
        return Err(WireError::MalformedHeader);
    }
    let needed = header_len + s + block_len + TRAILER;
    if needed > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            declared: needed,
            limit: MAX_FRAME_LEN,
        });
    }
    Ok(Some(needed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedBlock {
        CodedBlock::new(SegmentId::compose(3, 9), vec![1, 2, 3, 4], vec![0xAA; 64]).unwrap()
    }

    #[test]
    fn round_trip() {
        let block = sample();
        let frame = encode(&block);
        assert_eq!(frame.len(), frame_len(4, 64));
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn round_trip_preserves_provenance() {
        let block = sample().with_provenance(987_654_321, 12);
        let decoded = decode(&encode(&block)).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.origin_us(), 987_654_321);
        assert_eq!(decoded.hops(), 12);
    }

    #[test]
    fn legacy_frames_decode_with_zero_provenance() {
        let block = sample().with_provenance(123, 4);
        let frame = encode_legacy(&block);
        assert_eq!(frame.len(), legacy_frame_len(4, 64));
        assert_eq!(frame[1], LEGACY_VERSION);
        assert_eq!(peek_frame_len(&frame), Ok(Some(frame.len())));
        let decoded = decode(&frame).unwrap();
        assert_eq!(decoded, block, "coding content survives the downgrade");
        assert_eq!(decoded.origin_us(), 0, "legacy frames are unstamped");
        assert_eq!(decoded.hops(), 0);
    }

    #[test]
    fn mixed_version_stream_splits_and_decodes() {
        let new = sample().with_provenance(55, 2);
        let old = CodedBlock::new(SegmentId::new(7), vec![9, 9], vec![1, 2, 3]).unwrap();
        let mut stream = encode(&new).to_vec();
        stream.extend_from_slice(&encode_legacy(&old));
        let first_len = peek_frame_len(&stream).unwrap().unwrap();
        let first = decode(&stream[..first_len]).unwrap();
        assert_eq!(first.hops(), 2);
        let rest = &stream[first_len..];
        assert_eq!(peek_frame_len(rest), Ok(Some(rest.len())));
        assert_eq!(decode(rest).unwrap(), old);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_bad_magic() {
        let mut frame = encode(&sample()).to_vec();
        frame[0] = 0x00;
        assert_eq!(decode(&frame), Err(WireError::BadMagic { found: 0 }));
    }

    #[test]
    fn detects_bad_version() {
        let mut frame = encode(&sample()).to_vec();
        frame[1] = 42;
        assert_eq!(
            decode(&frame),
            Err(WireError::UnsupportedVersion { version: 42 })
        );
    }

    #[test]
    fn detects_truncation() {
        let frame = encode(&sample());
        for cut in [0, 1, 5, FIXED_HEADER, frame.len() - 1] {
            assert!(
                matches!(decode(&frame[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn detects_payload_corruption() {
        let mut frame = encode(&sample()).to_vec();
        let mid = frame.len() / 2;
        frame[mid] ^= 0xFF;
        assert!(matches!(
            decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn detects_header_corruption_via_checksum() {
        let mut frame = encode(&sample()).to_vec();
        frame[4] ^= 0x01; // inside segment id
        assert!(matches!(
            decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_segment_size_header() {
        let mut frame = encode(&sample()).to_vec();
        frame[10] = 0; // s = 0
                       // Either malformed-header or checksum error is acceptable; the
                       // header check fires first.
        assert_eq!(decode(&frame), Err(WireError::MalformedHeader));
    }

    #[test]
    fn peek_frame_len_matches_encoding() {
        let frame = encode(&sample());
        assert_eq!(peek_frame_len(&frame), Ok(Some(frame.len())));
        // The dimensions live in the version-1 header prefix, so the
        // length is known as soon as those bytes are visible — one byte
        // short of them it is not.
        assert_eq!(peek_frame_len(&frame[..FIXED_HEADER_V1 - 1]), Ok(None));
        assert_eq!(
            peek_frame_len(&frame[..FIXED_HEADER_V1]),
            Ok(Some(frame.len()))
        );
    }

    #[test]
    fn peek_rejects_invalid_prefixes_early() {
        // Wrong magic is detectable from the very first byte.
        assert_eq!(
            peek_frame_len(&[0x00]),
            Err(WireError::BadMagic { found: 0 })
        );
        // Wrong version from the second.
        assert_eq!(
            peek_frame_len(&[MAGIC, 9]),
            Err(WireError::UnsupportedVersion { version: 9 })
        );
        // A zero dimension is malformed, not "wait for more bytes".
        let mut frame = encode(&sample()).to_vec();
        frame[10] = 0;
        assert_eq!(
            peek_frame_len(&frame[..FIXED_HEADER]),
            Err(WireError::MalformedHeader)
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocation() {
        // Hand-craft a header declaring a ~4 GiB payload.
        let mut frame = vec![MAGIC, VERSION];
        frame.extend_from_slice(&7u64.to_be_bytes()); // segment id
        frame.push(4); // s
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // block_len
        assert!(matches!(
            peek_frame_len(&frame),
            Err(WireError::FrameTooLarge { .. })
        ));
        frame.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            decode(&frame),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn frame_survives_concatenation() {
        let a = sample();
        let b = CodedBlock::new(SegmentId::new(7), vec![9, 9], vec![1, 2, 3]).unwrap();
        let mut stream = encode(&a).to_vec();
        stream.extend_from_slice(&encode(&b));
        let first_len = peek_frame_len(&stream).unwrap().unwrap();
        assert_eq!(decode(&stream[..first_len]).unwrap(), a);
        assert_eq!(decode(&stream[first_len..]).unwrap(), b);
    }
}
