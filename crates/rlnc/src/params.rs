//! Coding parameters shared by every component of a deployment.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::CodingError;

/// The two parameters that define a segment code: the segment size `s`
/// (blocks per segment, the paper's coding granularity) and the block
/// length in bytes.
///
/// `s = 1` degenerates to the *non-coding* case studied throughout the
/// paper as the baseline; larger `s` trades decoding complexity
/// (O(s) per input block) for collection efficiency (Theorem 2).
///
/// # Examples
///
/// ```
/// use gossamer_rlnc::SegmentParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = SegmentParams::new(32, 1024)?;
/// assert_eq!(params.segment_size(), 32);
/// assert_eq!(params.segment_bytes(), 32 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawSegmentParams", into = "RawSegmentParams")]
pub struct SegmentParams {
    segment_size: usize,
    block_len: usize,
}

/// Unvalidated mirror used for (de)serialization so that deserialized
/// parameters go through [`SegmentParams::new`]'s checks.
#[derive(Serialize, Deserialize)]
struct RawSegmentParams {
    segment_size: usize,
    block_len: usize,
}

impl TryFrom<RawSegmentParams> for SegmentParams {
    type Error = CodingError;
    fn try_from(raw: RawSegmentParams) -> Result<Self, CodingError> {
        Self::new(raw.segment_size, raw.block_len)
    }
}

impl From<SegmentParams> for RawSegmentParams {
    fn from(p: SegmentParams) -> Self {
        Self {
            segment_size: p.segment_size,
            block_len: p.block_len,
        }
    }
}

impl SegmentParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidSegmentSize`] unless
    /// `1 <= segment_size <= 255` (the coefficient count travels as one
    /// byte on the wire), and [`CodingError::EmptyBlock`] for a zero
    /// block length.
    pub const fn new(segment_size: usize, block_len: usize) -> Result<Self, CodingError> {
        if segment_size == 0 || segment_size > 255 {
            return Err(CodingError::InvalidSegmentSize {
                requested: segment_size,
            });
        }
        if block_len == 0 {
            return Err(CodingError::EmptyBlock);
        }
        Ok(Self {
            segment_size,
            block_len,
        })
    }

    /// Blocks per segment (`s`).
    #[must_use]
    pub const fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Bytes per block.
    #[must_use]
    pub const fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total payload bytes carried by one segment.
    #[must_use]
    pub const fn segment_bytes(&self) -> usize {
        self.segment_size * self.block_len
    }

    /// Returns `true` for the degenerate non-coding configuration
    /// (`s = 1`).
    #[must_use]
    pub const fn is_non_coding(&self) -> bool {
        self.segment_size == 1
    }
}

impl fmt::Debug for SegmentParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SegmentParams {{ s: {}, block_len: {} }}",
            self.segment_size, self.block_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        assert!(SegmentParams::new(1, 1).is_ok());
        assert!(SegmentParams::new(255, 4096).is_ok());
    }

    #[test]
    fn rejects_zero_and_oversized_segment() {
        assert_eq!(
            SegmentParams::new(0, 16),
            Err(CodingError::InvalidSegmentSize { requested: 0 })
        );
        assert_eq!(
            SegmentParams::new(256, 16),
            Err(CodingError::InvalidSegmentSize { requested: 256 })
        );
    }

    #[test]
    fn rejects_empty_block() {
        assert_eq!(SegmentParams::new(4, 0), Err(CodingError::EmptyBlock));
    }

    #[test]
    fn serde_round_trips_through_validation() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SegmentParams>();
        // The try_from hook runs the constructor's validation, so a
        // hand-crafted invalid payload cannot materialise.
        let bad = RawSegmentParams {
            segment_size: 0,
            block_len: 4,
        };
        assert!(SegmentParams::try_from(bad).is_err());
        let good = RawSegmentParams {
            segment_size: 4,
            block_len: 16,
        };
        assert_eq!(
            SegmentParams::try_from(good).unwrap(),
            SegmentParams::new(4, 16).unwrap()
        );
    }

    #[test]
    fn accessors() {
        let p = SegmentParams::new(8, 64).unwrap();
        assert_eq!(p.segment_size(), 8);
        assert_eq!(p.block_len(), 64);
        assert_eq!(p.segment_bytes(), 512);
        assert!(!p.is_non_coding());
        assert!(SegmentParams::new(1, 64).unwrap().is_non_coding());
    }
}
