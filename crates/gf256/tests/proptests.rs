//! Property-based tests for the GF(2⁸) field, slice kernels and matrices.

use gossamer_gf256::{slice, Gf256, Matrix, Poly};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn gf_nonzero() -> impl Strategy<Value = Gf256> {
    (1..=255u8).prop_map(Gf256::new)
}

proptest! {
    // --- field axioms -----------------------------------------------------

    #[test]
    fn add_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in gf()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_inverse(a in gf_nonzero()) {
        let inv = a.inv().unwrap();
        prop_assert_eq!(a * inv, Gf256::ONE);
        prop_assert_eq!(Gf256::ONE / a, inv);
    }

    #[test]
    fn pow_homomorphism(a in gf(), e1 in 0u32..100, e2 in 0u32..100) {
        // a^(e1+e2) == a^e1 * a^e2 (for a != 0; for a == 0 both sides are 0
        // unless e1+e2 == 0)
        if !a.is_zero() || (e1 + e2 > 0 && e1 > 0 && e2 > 0) {
            prop_assert_eq!(a.pow(e1 + e2), a.pow(e1) * a.pow(e2));
        }
    }

    // --- slice kernels -----------------------------------------------------

    #[test]
    fn axpy_equals_scale_plus_add(
        c in gf(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        acc in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let n = data.len().min(acc.len());
        let (data, acc0) = (&data[..n], &acc[..n]);

        let mut via_axpy = acc0.to_vec();
        slice::axpy(&mut via_axpy, c, data);

        let mut scaled = data.to_vec();
        slice::scale_assign(&mut scaled, c);
        let mut via_two_step = acc0.to_vec();
        slice::add_assign(&mut via_two_step, &scaled);

        prop_assert_eq!(via_axpy, via_two_step);
    }

    #[test]
    fn scale_assign_is_linear(
        c in gf_nonzero(),
        data in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        let mut forward = data.clone();
        slice::scale_assign(&mut forward, c);
        slice::scale_assign(&mut forward, c.inv().unwrap());
        prop_assert_eq!(forward, data);
    }

    /// The vectorised kernels must agree with a scalar reference built
    /// from single-element `Gf256` operator arithmetic — the kernels'
    /// chunked/u64 fast paths must never change the algebra.
    #[test]
    fn slice_kernels_match_scalar_reference(
        c in gf(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        acc in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let n = data.len().min(acc.len());
        let (data, acc0) = (&data[..n], &acc[..n]);

        let mut added = acc0.to_vec();
        slice::add_assign(&mut added, data);
        let scalar_add: Vec<u8> = acc0
            .iter()
            .zip(data)
            .map(|(&x, &y)| (Gf256::new(x) + Gf256::new(y)).value())
            .collect();
        prop_assert_eq!(added, scalar_add);

        let mut scaled = data.to_vec();
        slice::scale_assign(&mut scaled, c);
        let scalar_scale: Vec<u8> =
            data.iter().map(|&x| (c * Gf256::new(x)).value()).collect();
        prop_assert_eq!(scaled, scalar_scale);

        let mut axpyed = acc0.to_vec();
        slice::axpy(&mut axpyed, c, data);
        let scalar_axpy: Vec<u8> = acc0
            .iter()
            .zip(data)
            .map(|(&a, &x)| (Gf256::new(a) + c * Gf256::new(x)).value())
            .collect();
        prop_assert_eq!(axpyed, scalar_axpy);

        let scalar_dot = acc0
            .iter()
            .zip(data)
            .fold(Gf256::ZERO, |s, (&a, &x)| s + Gf256::new(a) * Gf256::new(x));
        prop_assert_eq!(slice::dot(acc0, data), scalar_dot);
    }

    #[test]
    fn dot_commutative(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let n = a.len().min(b.len());
        prop_assert_eq!(slice::dot(&a[..n], &b[..n]), slice::dot(&b[..n], &a[..n]));
    }

    // --- matrices ----------------------------------------------------------

    #[test]
    fn matrix_inverse_round_trip(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::random(6, 6, &mut rng);
        if let Ok(inv) = m.invert() {
            prop_assert_eq!(m.mul(&inv), Matrix::identity(6));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(6));
        } else {
            prop_assert!(m.rank() < 6);
        }
    }

    #[test]
    fn solve_consistency(seed in any::<u64>(), width in 1usize..16) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random(5, 5, &mut rng);
        let x = Matrix::random(5, width, &mut rng);
        let b = a.mul(&x);
        match a.solve(&b) {
            Ok(got) => prop_assert_eq!(got, x),
            Err(_) => prop_assert!(a.rank() < 5),
        }
    }

    #[test]
    fn matrix_mul_associative(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random(3, 4, &mut rng);
        let b = Matrix::random(4, 5, &mut rng);
        let c = Matrix::random(5, 2, &mut rng);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn rank_invariant_under_transpose(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Matrix::random(4, 7, &mut rng);
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    // --- polynomials ---------------------------------------------------------

    #[test]
    fn poly_eval_homomorphism(
        p in proptest::collection::vec(any::<u8>(), 0..8),
        q in proptest::collection::vec(any::<u8>(), 0..8),
        x in gf(),
    ) {
        let p = Poly::new(p.into_iter().map(Gf256::new).collect());
        let q = Poly::new(q.into_iter().map(Gf256::new).collect());
        prop_assert_eq!(p.mul(&q).eval(x), p.eval(x) * q.eval(x));
        prop_assert_eq!(p.add(&q).eval(x), p.eval(x) + q.eval(x));
    }

    #[test]
    fn poly_interpolation_fits_points(ys in proptest::collection::vec(any::<u8>(), 1..12)) {
        let points: Vec<(Gf256, Gf256)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (Gf256::new(i as u8 + 1), Gf256::new(y)))
            .collect();
        let p = Poly::interpolate(&points);
        for &(x, y) in &points {
            prop_assert_eq!(p.eval(x), y);
        }
        prop_assert!(p.degree().map_or(0, |d| d + 1) <= points.len());
    }
}
