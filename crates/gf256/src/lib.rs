//! Arithmetic over the Galois field GF(2⁸).
//!
//! This crate is the finite-field substrate for gossamer's random linear
//! network coding (RLNC). The paper performs all coding operations "in the
//! Galois field GF(2⁸)" (Niu & Li, ICDCS 2008, Sec. 2); this crate provides:
//!
//! * [`Gf256`] — a scalar field element with full operator support,
//! * [`mod@slice`] — bulk kernels over `&[u8]` buffers (`add`, `scale`,
//!   `axpy`), the hot path of block encoding and decoding,
//! * [`Matrix`] — dense matrices over GF(2⁸) with Gaussian elimination,
//!   rank, inversion and linear solving, used by the RLNC decoder,
//! * [`Poly`] — polynomials over GF(2⁸) (evaluation and Lagrange
//!   interpolation), used for structured test vectors,
//! * [`Gf65536`] — the wide field GF(2¹⁶), the upgrade path for
//!   deployments that outgrow byte symbols.
//!
//! The field is realised as GF(2)\[x\]/(x⁸ + x⁴ + x³ + x² + 1), i.e. the
//! primitive polynomial `0x11D` with generator `α = 2` — the standard
//! choice in erasure-coding and network-coding implementations.
//! Multiplication and inversion go through compile-time–generated
//! logarithm/antilogarithm tables, so every scalar operation is O(1) with
//! no data-dependent branches.
//!
//! # Examples
//!
//! ```
//! use gossamer_gf256::Gf256;
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! let product = a * b;
//! assert_eq!(product / b, a);
//! assert_eq!(a + a, Gf256::ZERO); // characteristic 2
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod gf;
mod matrix;
mod poly;
pub mod slice;
mod tables;
mod wide;

pub use gf::Gf256;
pub use matrix::{Matrix, SolveError};
pub use poly::Poly;
pub use wide::Gf65536;
