//! The scalar field element type [`Gf256`].

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::distr::{Distribution, StandardUniform};
use rand::{Rng, RngExt};

use crate::tables::{EXP, LOG};

/// An element of the Galois field GF(2⁸).
///
/// The representation is the canonical byte; addition is XOR and
/// multiplication is polynomial multiplication modulo `0x11D`. All four
/// arithmetic operators are implemented, along with their `Assign`
/// variants, on both values and references.
///
/// Because the field has characteristic 2, subtraction equals addition and
/// every element is its own additive inverse.
///
/// # Examples
///
/// ```
/// use gossamer_gf256::Gf256;
///
/// let a = Gf256::new(17);
/// assert_eq!(a - a, Gf256::ZERO);
/// assert_eq!(a * Gf256::ONE, a);
/// assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Self = Self(0);
    /// The multiplicative identity.
    pub const ONE: Self = Self(1);
    /// The canonical generator `α = 2` of the multiplicative group.
    pub const GENERATOR: Self = Self(2);

    /// Wraps a byte as a field element.
    #[inline]
    #[must_use]
    pub const fn new(value: u8) -> Self {
        Self(value)
    }

    /// Returns the canonical byte representation.
    #[inline]
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `α^k` (the `k`-th power of the generator).
    ///
    /// `k` is reduced modulo 255, the order of the multiplicative group.
    #[inline]
    #[must_use]
    pub const fn alpha_pow(k: usize) -> Self {
        Self(EXP[k % 255])
    }

    /// Returns the discrete logarithm base `α`, or `None` for zero.
    #[inline]
    #[must_use]
    pub const fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use gossamer_gf256::Gf256;
    /// assert_eq!(Gf256::ZERO.inv(), None);
    /// let x = Gf256::new(0xC3);
    /// assert_eq!((x * x.inv().unwrap()), Gf256::ONE);
    /// ```
    #[inline]
    #[must_use]
    pub const fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Self(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises this element to the power `exp`.
    ///
    /// `Gf256::ZERO.pow(0)` is defined as `ONE`, following the usual
    /// empty-product convention.
    #[must_use]
    pub const fn pow(self, exp: u32) -> Self {
        if exp == 0 {
            return Self::ONE;
        }
        if self.0 == 0 {
            return Self::ZERO;
        }
        let log = LOG[self.0 as usize] as u64;
        let e = (log * exp as u64) % 255;
        Self(EXP[e as usize])
    }

    /// Samples a uniformly random element (possibly zero).
    #[inline]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.random())
    }

    /// Samples a uniformly random **non-zero** element.
    ///
    /// RLNC coding coefficients drawn non-zero guarantee that a freshly
    /// recoded block involves every buffered block.
    #[inline]
    pub fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.random_range(1..=255u8))
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Self(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Distribution<Gf256> for StandardUniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Gf256 {
        Gf256(rng.random())
    }
}

#[inline]
pub const fn mul_bytes(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

// Addition in a characteristic-2 field IS XOR.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf256 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction coincides with addition.
        Self(self.0 ^ rhs.0)
    }
}

impl Mul for Gf256 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(mul_bytes(self.0, rhs.0))
    }
}

// Division is multiplication by the inverse.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Gf256 {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero. Use [`Gf256::inv`] for a fallible variant.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let inv = rhs.inv().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl Neg for Gf256 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        // Every element is its own additive inverse.
        self
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

macro_rules! forward_ref_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<&Gf256> for Gf256 {
            type Output = Gf256;
            #[inline]
            fn $method(self, rhs: &Gf256) -> Gf256 {
                $trait::$method(self, *rhs)
            }
        }
        impl $trait<Gf256> for &Gf256 {
            type Output = Gf256;
            #[inline]
            fn $method(self, rhs: Gf256) -> Gf256 {
                $trait::$method(*self, rhs)
            }
        }
        impl $trait<&Gf256> for &Gf256 {
            type Output = Gf256;
            #[inline]
            fn $method(self, rhs: &Gf256) -> Gf256 {
                $trait::$method(*self, *rhs)
            }
        }
    };
}

forward_ref_binop!(Add, add);
forward_ref_binop!(Sub, sub);
forward_ref_binop!(Mul, mul);
forward_ref_binop!(Div, div);

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Self> for Gf256 {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, Mul::mul)
    }
}

impl<'a> Product<&'a Self> for Gf256 {
    fn product<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identities() {
        for v in 0..=255u8 {
            let x = Gf256::new(v);
            assert_eq!(x + Gf256::ZERO, x);
            assert_eq!(x * Gf256::ONE, x);
            assert_eq!(x * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Gf256::new(0b1010_1010);
        let b = Gf256::new(0b0101_0101);
        assert_eq!((a + b).value(), 0xFF);
        assert_eq!(a + a, Gf256::ZERO);
        assert_eq!(-a, a);
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for v in 1..=255u8 {
            let x = Gf256::new(v);
            let inv = x.inv().expect("non-zero must invert");
            assert_eq!(x * inv, Gf256::ONE, "v={v}");
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn division_round_trips_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                assert_eq!((a * b) / b, a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = Gf256::new(0x53);
        let mut acc = Gf256::ONE;
        for e in 0..600u32 {
            assert_eq!(x.pow(e), acc, "exponent {e}");
            acc *= x;
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(7), Gf256::ZERO);
        assert_eq!(Gf256::new(9).pow(0), Gf256::ONE);
    }

    #[test]
    fn generator_has_full_order() {
        let mut x = Gf256::ONE;
        for k in 1..255 {
            x *= Gf256::GENERATOR;
            assert_ne!(x, Gf256::ONE, "order divides {k}");
        }
        x *= Gf256::GENERATOR;
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn alpha_pow_wraps_modulo_255() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), Gf256::GENERATOR);
    }

    #[test]
    fn log_is_inverse_of_alpha_pow() {
        for k in 0..255usize {
            assert_eq!(Gf256::alpha_pow(k).log(), Some(k as u8));
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
        let s: Gf256 = xs.iter().sum();
        assert_eq!(s, Gf256::new(1 ^ 2 ^ 3));
        let p: Gf256 = xs.iter().product();
        assert_eq!(p, Gf256::new(1) * Gf256::new(2) * Gf256::new(3));
    }

    #[test]
    fn random_nonzero_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(!Gf256::random_nonzero(&mut rng).is_zero());
        }
    }

    #[test]
    fn conversions_and_formatting() {
        let x: Gf256 = 0xABu8.into();
        let back: u8 = x.into();
        assert_eq!(back, 0xAB);
        assert_eq!(format!("{x}"), "ab");
        assert_eq!(format!("{x:?}"), "Gf256(0xab)");
        assert_eq!(format!("{x:X}"), "AB");
        assert_eq!(format!("{x:b}"), "10101011");
    }
}
