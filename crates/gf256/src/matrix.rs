//! Dense matrices over GF(2⁸) with Gaussian elimination.
//!
//! The RLNC decoder reduces received coefficient vectors to row-echelon
//! form to track rank and to recover the original blocks; the routines
//! here ([`Matrix::rank`], [`Matrix::invert`], [`Matrix::solve`],
//! [`Matrix::rref`]) are the reference implementations those hot paths are
//! validated against, and they also back the decoder's final solve.

use core::fmt;

use rand::{Rng, RngExt};

use crate::{slice, Gf256};

/// Error returned by [`Matrix::solve`] and [`Matrix::invert`] when the
/// system is singular (not full rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveError {
    rank: usize,
    dim: usize,
}

impl SolveError {
    /// The rank the elimination reached before stalling.
    #[must_use]
    pub const fn rank(&self) -> usize {
        self.rank
    }

    /// The rank required for the system to be solvable.
    #[must_use]
    pub const fn dim(&self) -> usize {
        self.dim
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "singular system: rank {} of required {}",
            self.rank, self.dim
        )
    }
}

impl std::error::Error for SolveError {}

/// A dense row-major matrix over GF(2⁸).
///
/// # Examples
///
/// ```
/// use gossamer_gf256::{Gf256, Matrix};
///
/// let m = Matrix::identity(3);
/// assert_eq!(m.rank(), 3);
/// assert_eq!(m.invert().unwrap(), m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Builds a matrix from a row-major byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Builds an `n × n` Vandermonde-style matrix from distinct evaluation
    /// points; always invertible when the points are distinct.
    #[must_use]
    pub fn vandermonde(points: &[Gf256]) -> Self {
        let n = points.len();
        let mut m = Self::zero(n, n);
        for (r, &x) in points.iter().enumerate() {
            for c in 0..n {
                m.set(r, c, x.pow(c as u32));
            }
        }
        m
    }

    /// Fills a matrix with uniformly random entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.random()).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Gf256 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        Gf256::new(self.data[row * self.cols + col])
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Gf256) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value.value();
    }

    /// Borrows a row as a byte slice.
    #[must_use]
    pub fn row(&self, row: usize) -> &[u8] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows a row as a byte slice.
    pub fn row_mut(&mut self, row: usize) -> &mut [u8] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Splits two distinct rows into mutable slices.
    fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [u8], &mut [u8]) {
        assert_ne!(a, b);
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            let (bs, as_) = (&mut lo[b * cols..(b + 1) * cols], &mut hi[..cols]);
            (as_, bs)
        }
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Self::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = Gf256::new(self.data[i * self.cols + k]);
                if a.is_zero() {
                    continue;
                }
                let (dst, src) = (
                    i * rhs.cols..(i + 1) * rhs.cols,
                    k * rhs.cols..(k + 1) * rhs.cols,
                );
                let (out_row, rhs_row) = (&mut out.data[dst], &rhs.data[src]);
                slice::axpy(out_row, a, rhs_row);
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, vec: &[u8]) -> Vec<u8> {
        assert_eq!(vec.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| slice::dot(self.row(i), vec).value())
            .collect()
    }

    /// Reduces the matrix in place to reduced row-echelon form and returns
    /// its rank.
    pub fn rref(&mut self) -> usize {
        self.rref_within(self.cols)
    }

    /// Like [`Matrix::rref`], but only selects pivots from the first
    /// `pivot_cols` columns. Rows are still reduced across their full
    /// width, which is exactly what elimination on an augmented matrix
    /// `[A | B]` needs: pivots must come from `A` only.
    ///
    /// # Panics
    ///
    /// Only if an internal invariant is violated (pivot bookkeeping
    /// stays within the matrix bounds); never on valid input.
    pub fn rref_within(&mut self, pivot_cols: usize) -> usize {
        let mut pivot_row = 0;
        for col in 0..pivot_cols.min(self.cols) {
            if pivot_row == self.rows {
                break;
            }
            // Find a row with a non-zero entry in this column.
            let Some(found) = (pivot_row..self.rows).find(|&r| self.data[r * self.cols + col] != 0)
            else {
                continue;
            };
            self.swap_rows(pivot_row, found);
            // Normalise the pivot to 1.
            let pivot = Gf256::new(self.data[pivot_row * self.cols + col]);
            let inv = pivot.inv().expect("pivot is non-zero");
            slice::scale_assign(self.row_mut(pivot_row), inv);
            // Eliminate the column everywhere else.
            for r in 0..self.rows {
                if r == pivot_row {
                    continue;
                }
                let factor = Gf256::new(self.data[r * self.cols + col]);
                if factor.is_zero() {
                    continue;
                }
                let (target, pivot_slice) = self.two_rows_mut(r, pivot_row);
                slice::axpy(target, factor, pivot_slice);
            }
            pivot_row += 1;
        }
        pivot_row
    }

    /// Swaps two rows (no-op if equal).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ra, rb) = self.two_rows_mut(a, b);
        ra.swap_with_slice(rb);
    }

    /// Returns the rank without mutating the matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.clone().rref()
    }

    /// Inverts a square matrix via Gauss–Jordan on `[A | I]`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the matrix is singular or non-square.
    pub fn invert(&self) -> Result<Self, SolveError> {
        if self.rows != self.cols {
            return Err(SolveError {
                rank: 0,
                dim: self.rows.max(self.cols),
            });
        }
        let n = self.rows;
        let mut aug = Self::zero(n, 2 * n);
        for r in 0..n {
            aug.data[r * 2 * n..r * 2 * n + n].copy_from_slice(self.row(r));
            aug.data[r * 2 * n + n + r] = 1;
        }
        let rank = aug.rref_within(n);
        if rank < n {
            return Err(SolveError { rank, dim: n });
        }
        let mut out = Self::zero(n, n);
        for r in 0..n {
            out.row_mut(r)
                .copy_from_slice(&aug.data[r * 2 * n + n..(r + 1) * 2 * n]);
        }
        Ok(out)
    }

    /// Solves `A · X = B` where each row of `B` is a right-hand side
    /// aligned with the corresponding row of `A`.
    ///
    /// This is exactly the RLNC decode shape: `A` holds coefficient
    /// vectors, `B` the coded payloads, and the solution rows are the
    /// original blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if `A` is singular or non-square.
    ///
    /// # Panics
    ///
    /// Panics if `B` has a different number of rows than `A`.
    pub fn solve(&self, rhs: &Self) -> Result<Self, SolveError> {
        assert_eq!(self.rows, rhs.rows, "rhs must align with lhs rows");
        if self.rows != self.cols {
            return Err(SolveError {
                rank: 0,
                dim: self.rows.max(self.cols),
            });
        }
        let n = self.rows;
        let w = rhs.cols;
        let mut aug = Self::zero(n, n + w);
        for r in 0..n {
            aug.data[r * (n + w)..r * (n + w) + n].copy_from_slice(self.row(r));
            aug.data[r * (n + w) + n..(r + 1) * (n + w)].copy_from_slice(rhs.row(r));
        }
        let rank = aug.rref_within(n);
        if rank < n {
            return Err(SolveError { rank, dim: n });
        }
        let mut out = Self::zero(n, w);
        for r in 0..n {
            out.row_mut(r)
                .copy_from_slice(&aug.data[r * (n + w) + n..(r + 1) * (n + w)]);
        }
        Ok(out)
    }

    /// Returns the matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zero(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_properties() {
        let id = Matrix::identity(4);
        assert_eq!(id.rank(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(4, 4, &mut rng);
        assert_eq!(id.mul(&m), m);
        assert_eq!(m.mul(&id), m);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(Matrix::zero(5, 3).rank(), 0);
    }

    #[test]
    fn rank_of_duplicated_rows() {
        let mut m = Matrix::zero(3, 3);
        for c in 0..3 {
            m.set(0, c, Gf256::new(c as u8 + 1));
            m.set(1, c, Gf256::new(c as u8 + 1));
            m.set(2, c, Gf256::new((c as u8 + 1) * 3));
        }
        // Row 1 duplicates row 0; row 2 is a scalar multiple (in GF terms
        // times 3) of row 0 only if *3 distributes — construct explicitly:
        let mut r2 = [0u8; 3];
        r2.copy_from_slice(m.row(0));
        slice::scale_assign(&mut r2, Gf256::new(3));
        for (c, &v) in r2.iter().enumerate() {
            m.set(2, c, Gf256::new(v));
        }
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn vandermonde_is_invertible() {
        let points: Vec<Gf256> = (1..=8u8).map(Gf256::new).collect();
        let v = Matrix::vandermonde(&points);
        assert_eq!(v.rank(), 8);
        let inv = v.invert().unwrap();
        assert_eq!(v.mul(&inv), Matrix::identity(8));
        assert_eq!(inv.mul(&v), Matrix::identity(8));
    }

    #[test]
    fn random_square_matrices_mostly_invert() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut invertible = 0;
        for _ in 0..50 {
            let m = Matrix::random(8, 8, &mut rng);
            if let Ok(inv) = m.invert() {
                invertible += 1;
                assert_eq!(m.mul(&inv), Matrix::identity(8));
            }
        }
        // Random GF(256) matrices are invertible with prob ~ prod(1-q^-k) ≈ 0.996.
        assert!(invertible >= 45, "only {invertible}/50 invertible");
    }

    #[test]
    fn invert_rejects_singular() {
        let m = Matrix::zero(3, 3);
        let err = m.invert().unwrap_err();
        assert_eq!(err.rank(), 0);
        assert_eq!(err.dim(), 3);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn invert_rejects_non_square() {
        assert!(Matrix::zero(2, 3).invert().is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = Matrix::random(6, 6, &mut rng);
            if a.rank() < 6 {
                continue;
            }
            let x = Matrix::random(6, 32, &mut rng);
            let b = a.mul(&x);
            let solved = a.solve(&b).expect("full rank solves");
            assert_eq!(solved, x);
        }
    }

    #[test]
    fn solve_detects_singularity() {
        let mut a = Matrix::zero(3, 3);
        a.set(0, 0, Gf256::ONE);
        a.set(1, 1, Gf256::ONE);
        // third row zero -> singular
        let b = Matrix::random(3, 4, &mut StdRng::seed_from_u64(9));
        assert!(a.solve(&b).is_err());
    }

    #[test]
    fn rref_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Matrix::random(5, 9, &mut rng);
        let rank1 = m.rref();
        let snapshot = m.clone();
        let rank2 = m.rref();
        assert_eq!(rank1, rank2);
        assert_eq!(m, snapshot);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Matrix::random(4, 6, &mut rng);
        let v = Matrix::random(6, 1, &mut rng);
        let via_mul = a.mul(&v);
        let flat: Vec<u8> = (0..6).map(|r| v.get(r, 0).value()).collect();
        let via_vec = a.mul_vec(&flat);
        for (r, &v) in via_vec.iter().enumerate() {
            assert_eq!(via_mul.get(r, 0).value(), v);
        }
    }

    #[test]
    fn transpose_involution_and_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let m = Matrix::random(3, 7, &mut rng);
        let t = m.transpose();
        assert_eq!(t.rows(), 7);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn rank_bounded_by_min_dimension() {
        let mut rng = StdRng::seed_from_u64(19);
        let m = Matrix::random(3, 10, &mut rng);
        assert!(m.rank() <= 3);
        let m = Matrix::random(10, 3, &mut rng);
        assert!(m.rank() <= 3);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let s = format!("{:?}", Matrix::identity(2));
        assert!(s.contains("Matrix 2x2"));
    }
}
