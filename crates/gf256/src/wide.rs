//! The wide field GF(2¹⁶).
//!
//! RLNC over GF(2⁸) pays a ≈`1/256` per-reception linear-dependence
//! probability and caps segment sizes at 255. A 16-bit symbol field
//! shrinks the dependence probability to ≈`1/65536` and lifts the size
//! cap — the standard upgrade path for coding systems that outgrow byte
//! symbols. [`Gf65536`] provides the scalar arithmetic (the paper's
//! protocol itself stays on GF(2⁸), matching its Sec. 2 statement).
//!
//! Realised as GF(2)\[x\]/(x¹⁶ + x¹² + x³ + x + 1) (primitive polynomial
//! `0x1100B`, generator `α = 2`) with compile-time log/exp tables
//! (384 KiB total), so multiplication and inversion are O(1) table
//! lookups exactly as in the byte field.
//!
//! # Examples
//!
//! ```
//! use gossamer_gf256::Gf65536;
//!
//! let a = Gf65536::new(0x1234);
//! let b = Gf65536::new(0xBEEF);
//! assert_eq!((a * b) / b, a);
//! assert_eq!(a + a, Gf65536::ZERO);
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::{Rng, RngExt};

/// The primitive polynomial x¹⁶ + x¹² + x³ + x + 1.
const PRIMITIVE_POLY_16: u32 = 0x1100B;
const ORDER: usize = 65535;

static EXP16: [u16; 2 * ORDER] = build_exp16();
static LOG16: [u16; 65536] = build_log16();

// 256 KiB tables, but const-evaluated: they live in rodata, never on a
// runtime stack.
#[allow(clippy::large_stack_arrays, clippy::large_stack_frames)]
const fn build_exp16() -> [u16; 2 * ORDER] {
    let mut table = [0u16; 2 * ORDER];
    let mut value: u32 = 1;
    let mut i = 0;
    while i < ORDER {
        table[i] = value as u16;
        table[i + ORDER] = value as u16;
        value <<= 1;
        if value & 0x10000 != 0 {
            value ^= PRIMITIVE_POLY_16;
        }
        i += 1;
    }
    table
}

// Const-evaluated, as `build_exp16` above.
#[allow(clippy::large_stack_arrays, clippy::large_stack_frames)]
const fn build_log16() -> [u16; 65536] {
    let exp = build_exp16();
    let mut table = [0u16; 65536];
    let mut i = 0;
    while i < ORDER {
        table[exp[i] as usize] = i as u16;
        i += 1;
    }
    table
}

/// An element of GF(2¹⁶). See the module docs.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf65536(u16);

impl Gf65536 {
    /// The additive identity.
    pub const ZERO: Self = Self(0);
    /// The multiplicative identity.
    pub const ONE: Self = Self(1);
    /// The canonical generator `α = 2`.
    pub const GENERATOR: Self = Self(2);

    /// Wraps a raw value.
    #[inline]
    #[must_use]
    pub const fn new(value: u16) -> Self {
        Self(value)
    }

    /// The canonical representation.
    #[inline]
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Returns `true` for the additive identity.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The multiplicative inverse, or `None` for zero.
    #[inline]
    #[must_use]
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Self(EXP16[ORDER - LOG16[self.0 as usize] as usize]))
        }
    }

    /// Raises to the power `exp` (`0⁰ = 1` by convention).
    #[must_use]
    pub fn pow(self, exp: u32) -> Self {
        if exp == 0 {
            return Self::ONE;
        }
        if self.0 == 0 {
            return Self::ZERO;
        }
        let log = LOG16[self.0 as usize] as u64;
        let e = (log * exp as u64) % ORDER as u64;
        Self(EXP16[e as usize])
    }

    /// Uniformly random element.
    #[inline]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.random())
    }

    /// Uniformly random non-zero element.
    #[inline]
    pub fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(rng.random_range(1..=u16::MAX))
    }
}

#[inline]
fn mul16(a: u16, b: u16) -> u16 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP16[LOG16[a as usize] as usize + LOG16[b as usize] as usize]
    }
}

impl fmt::Debug for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf65536(0x{:04x})", self.0)
    }
}

impl fmt::Display for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

// Addition in a characteristic-2 field IS XOR.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf65536 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf65536 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 ^ rhs.0)
    }
}

impl Mul for Gf65536 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(mul16(self.0, rhs.0))
    }
}

// Division is multiplication by the inverse.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Gf65536 {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero; use [`Gf65536::inv`] for a fallible form.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv().expect("division by zero in GF(2^16)")
    }
}

impl Neg for Gf65536 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf65536 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf65536 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl MulAssign for Gf65536 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Gf65536 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl From<u16> for Gf65536 {
    #[inline]
    fn from(v: u16) -> Self {
        Self(v)
    }
}

impl From<Gf65536> for u16 {
    #[inline]
    fn from(v: Gf65536) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_exp_tables_are_consistent() {
        assert_eq!(EXP16[0], 1);
        assert_eq!(EXP16[ORDER], 1, "generator order must be 65535");
        for k in (0..ORDER).step_by(97) {
            assert_eq!(LOG16[EXP16[k] as usize] as usize, k);
        }
    }

    #[test]
    fn field_axioms_on_random_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = Gf65536::random(&mut rng);
            let b = Gf65536::random(&mut rng);
            let c = Gf65536::random(&mut rng);
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a + a, Gf65536::ZERO);
            assert_eq!(a * Gf65536::ONE, a);
        }
    }

    #[test]
    fn every_sampled_nonzero_inverts() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Gf65536::ZERO.inv(), None);
        for _ in 0..2000 {
            let a = Gf65536::random_nonzero(&mut rng);
            assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
            assert_eq!((a * a) / a, a);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = Gf65536::new(0xABCD);
        let mut acc = Gf65536::ONE;
        for e in 0..200u32 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
        assert_eq!(Gf65536::ZERO.pow(0), Gf65536::ONE);
        assert_eq!(Gf65536::ZERO.pow(3), Gf65536::ZERO);
    }

    #[test]
    fn agrees_with_carryless_reference() {
        fn mul_reference(mut a: u16, mut b: u16) -> u16 {
            let mut acc = 0u16;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                let carry = a & 0x8000 != 0;
                a <<= 1;
                if carry {
                    a ^= (PRIMITIVE_POLY_16 & 0xFFFF) as u16;
                }
                b >>= 1;
            }
            acc
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5000 {
            let a: u16 = rng.random();
            let b: u16 = rng.random();
            assert_eq!(mul16(a, b), mul_reference(a, b), "a={a:04x} b={b:04x}");
        }
    }

    /// The motivation: random single coefficients collide far less often
    /// in the wide field.
    #[test]
    fn dependence_probability_shrinks() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 60_000;
        let mut byte_collisions = 0u32;
        let mut wide_collisions = 0u32;
        for _ in 0..trials {
            let a: u8 = rng.random();
            let b: u8 = rng.random();
            if a == b {
                byte_collisions += 1;
            }
            let c: u16 = rng.random();
            let d: u16 = rng.random();
            if c == d {
                wide_collisions += 1;
            }
        }
        // Expected ~234 vs ~1.
        assert!(byte_collisions > 120, "byte collisions {byte_collisions}");
        assert!(wide_collisions < 20, "wide collisions {wide_collisions}");
    }

    #[test]
    fn display_and_conversions() {
        let x: Gf65536 = 0x00FFu16.into();
        let raw: u16 = x.into();
        assert_eq!(raw, 0x00FF);
        assert_eq!(format!("{x}"), "00ff");
        assert_eq!(format!("{x:?}"), "Gf65536(0x00ff)");
        assert_eq!(-x, x);
    }
}
