//! Compile-time–generated logarithm and antilogarithm tables for GF(2⁸).
//!
//! The field is GF(2)[x]/(x⁸ + x⁴ + x³ + x² + 1) (primitive polynomial
//! `0x11D`). The element `α = 2` generates the multiplicative group, so
//! every non-zero element equals `α^k` for a unique `k ∈ 0..255`.
//!
//! `EXP[k] = α^k` for `k ∈ 0..510` (doubled so `EXP[log a + log b]` never
//! needs a modular reduction) and `LOG[α^k] = k`. `LOG[0]` is a sentinel
//! that must never be consumed; the public API guards against it.

/// The primitive polynomial x⁸ + x⁴ + x³ + x² + 1 used for reduction.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// `EXP[k] = α^k` for `k` in `0..510` (table is doubled to skip a `% 255`).
pub const EXP: [u8; 510] = build_exp();

/// `LOG[α^k] = k`; `LOG[0]` is unused (guarded by the caller).
pub const LOG: [u8; 256] = build_log();

/// Full 256×256 multiplication table: `MUL[a][b] = a·b`.
///
/// 64 KiB, built at compile time. The bulk slice kernels index one row
/// per call (`MUL[c]`), turning the per-byte inner loop into a single
/// table load and XOR with no per-call setup; the row also stays hot in
/// L1 across consecutive kernel invocations with the same coefficient.
pub static MUL: [[u8; 256]; 256] = build_mul();

// 64 KiB table, but const-evaluated: it lives in rodata, never on a
// runtime stack.
#[allow(clippy::large_stack_arrays)]
const fn build_mul() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut value: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = value as u8;
        table[i + 255] = value as u8;
        value <<= 1;
        if value & 0x100 != 0 {
            value ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-by-bit carry-less ("Russian peasant") multiplication, the
    /// reference implementation the tables must agree with.
    pub fn mul_reference(mut a: u8, mut b: u8) -> u8 {
        let mut acc: u8 = 0;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let carry = a & 0x80 != 0;
            a <<= 1;
            if carry {
                a ^= (PRIMITIVE_POLY & 0xFF) as u8;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn exp_table_cycles_with_period_255() {
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[255], 1);
        for (k, &v) in EXP.iter().enumerate().take(255) {
            assert_eq!(v, EXP[k + 255]);
        }
    }

    #[test]
    fn exp_hits_every_nonzero_element_once() {
        let mut seen = [false; 256];
        for (k, &value) in EXP.iter().enumerate().take(255) {
            let v = value as usize;
            assert_ne!(v, 0, "alpha^{k} must be non-zero");
            assert!(!seen[v], "alpha^{k} repeats value {v}");
            seen[v] = true;
        }
    }

    #[test]
    fn log_inverts_exp() {
        for k in 0..255u16 {
            assert_eq!(LOG[EXP[k as usize] as usize] as u16, k);
        }
    }

    #[test]
    fn full_mul_table_matches_reference() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    MUL[a as usize][b as usize],
                    mul_reference(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn tables_agree_with_carryless_reference() {
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                let via_tables = EXP[LOG[a as usize] as usize + LOG[b as usize] as usize];
                assert_eq!(via_tables, mul_reference(a, b), "a={a} b={b}");
            }
        }
    }
}
