//! Bulk GF(2⁸) kernels over byte slices.
//!
//! Encoding and decoding RLNC blocks reduces to three primitives over the
//! block payloads, all provided here:
//!
//! * [`add_assign`] — `dst[i] ^= src[i]` (field addition),
//! * [`scale_assign`] — `dst[i] *= c`,
//! * [`axpy`] — `dst[i] += c * src[i]`, the fused kernel that dominates
//!   both encoding and Gaussian elimination.
//!
//! `add_assign` XORs eight bytes at a time through `u64` lanes;
//! multiplication kernels specialise `c == 0` and `c == 1` and otherwise
//! use a per-call row of the multiplication table so the inner loop is a
//! single indexed load and XOR per byte.

use crate::gf::mul_bytes;
use crate::tables::MUL;
use crate::Gf256;

/// Adds `src` into `dst` element-wise (`dst[i] += src[i]` in GF(2⁸)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let mut dst = [0x0F, 0xF0];
/// gossamer_gf256::slice::add_assign(&mut dst, &[0xFF, 0xFF]);
/// assert_eq!(dst, [0xF0, 0x0F]);
/// ```
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign requires equal-length slices"
    );
    let (dst_chunks, dst_tail) = dst.as_chunks_mut::<8>();
    let (src_chunks, src_tail) = src.as_chunks::<8>();
    for (d, s) in dst_chunks.iter_mut().zip(src_chunks) {
        let x = u64::from_ne_bytes(*d) ^ u64::from_ne_bytes(*s);
        *d = x.to_ne_bytes();
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= *s;
    }
}

/// The precomputed multiplication row `t[b] = c * b` for a fixed `c`.
#[inline]
fn mul_row(c: u8) -> &'static [u8; 256] {
    &MUL[c as usize]
}

/// Scales `dst` in place by the scalar `c` (`dst[i] *= c`).
///
/// # Examples
///
/// ```
/// use gossamer_gf256::Gf256;
/// let mut buf = [1, 2, 3];
/// gossamer_gf256::slice::scale_assign(&mut buf, Gf256::ONE);
/// assert_eq!(buf, [1, 2, 3]);
/// gossamer_gf256::slice::scale_assign(&mut buf, Gf256::ZERO);
/// assert_eq!(buf, [0, 0, 0]);
/// ```
pub fn scale_assign(dst: &mut [u8], c: Gf256) {
    match c.value() {
        0 => dst.fill(0),
        1 => {}
        cv => {
            let row = mul_row(cv);
            for d in dst {
                *d = row[*d as usize];
            }
        }
    }
}

/// Fused multiply-add: `dst[i] += c * src[i]` in GF(2⁸).
///
/// This is the hot kernel of RLNC: a coded block is produced by `axpy`-ing
/// each buffered block into an accumulator with a fresh random
/// coefficient, and Gaussian elimination applies it to both coefficient
/// vectors and payloads.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use gossamer_gf256::Gf256;
/// let mut acc = [0u8; 3];
/// gossamer_gf256::slice::axpy(&mut acc, Gf256::new(2), &[1, 2, 3]);
/// assert_eq!(acc, [2, 4, 6]);
/// ```
pub fn axpy(dst: &mut [u8], c: Gf256, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "axpy requires equal-length slices");
    match c.value() {
        0 => {}
        1 => add_assign(dst, src),
        cv => {
            let row = mul_row(cv);
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

/// Returns the dot product of two GF(2⁸) vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[u8], b: &[u8]) -> Gf256 {
    assert_eq!(a.len(), b.len(), "dot requires equal-length slices");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        acc ^= mul_bytes(x, y);
    }
    Gf256::new(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_buf(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn add_assign_matches_scalar_loop_for_all_alignments() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let mut dst = random_buf(&mut rng, len);
            let src = random_buf(&mut rng, len);
            let expected: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            add_assign(&mut dst, &src);
            assert_eq!(dst, expected, "len={len}");
        }
    }

    #[test]
    fn add_assign_twice_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dst = random_buf(&mut rng, 129);
        let src = random_buf(&mut rng, 129);
        let original = dst.clone();
        add_assign(&mut dst, &src);
        add_assign(&mut dst, &src);
        assert_eq!(dst, original);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn add_assign_length_mismatch_panics() {
        add_assign(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn scale_assign_special_cases() {
        let mut buf = [5u8, 6, 7];
        scale_assign(&mut buf, Gf256::ONE);
        assert_eq!(buf, [5, 6, 7]);
        scale_assign(&mut buf, Gf256::ZERO);
        assert_eq!(buf, [0, 0, 0]);
    }

    #[test]
    fn scale_assign_matches_scalar_multiplication() {
        let mut rng = StdRng::seed_from_u64(3);
        for c in [2u8, 3, 0x53, 0xFF] {
            let buf = random_buf(&mut rng, 100);
            let mut scaled = buf.clone();
            scale_assign(&mut scaled, Gf256::new(c));
            for (i, (&orig, &got)) in buf.iter().zip(&scaled).enumerate() {
                assert_eq!(
                    Gf256::new(got),
                    Gf256::new(orig) * Gf256::new(c),
                    "i={i} c={c}"
                );
            }
        }
    }

    #[test]
    fn scale_then_inverse_scale_round_trips() {
        let mut rng = StdRng::seed_from_u64(4);
        let buf = random_buf(&mut rng, 256);
        let c = Gf256::new(0xA7);
        let mut work = buf.clone();
        scale_assign(&mut work, c);
        scale_assign(&mut work, c.inv().unwrap());
        assert_eq!(work, buf);
    }

    #[test]
    fn axpy_matches_scalar_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let dst0 = random_buf(&mut rng, 333);
        let src = random_buf(&mut rng, 333);
        for c in [0u8, 1, 2, 0x80, 0xFF] {
            let mut dst = dst0.clone();
            axpy(&mut dst, Gf256::new(c), &src);
            for i in 0..dst.len() {
                let expected = Gf256::new(dst0[i]) + Gf256::new(c) * Gf256::new(src[i]);
                assert_eq!(Gf256::new(dst[i]), expected, "i={i} c={c}");
            }
        }
    }

    #[test]
    fn axpy_zero_coefficient_is_noop() {
        let mut dst = [1u8, 2, 3];
        axpy(&mut dst, Gf256::ZERO, &[9, 9, 9]);
        assert_eq!(dst, [1, 2, 3]);
    }

    #[test]
    fn dot_is_bilinear() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_buf(&mut rng, 64);
        let b = random_buf(&mut rng, 64);
        let c = random_buf(&mut rng, 64);
        // dot(a, b + c) == dot(a, b) + dot(a, c)
        let bc: Vec<u8> = b.iter().zip(&c).map(|(x, y)| x ^ y).collect();
        assert_eq!(dot(&a, &bc), dot(&a, &b) + dot(&a, &c));
        // dot(a, k*b) == k * dot(a, b)
        let k = Gf256::new(0x1D);
        let mut kb = b.clone();
        scale_assign(&mut kb, k);
        assert_eq!(dot(&a, &kb), k * dot(&a, &b));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), Gf256::ZERO);
    }
}
