//! Polynomials over GF(2⁸).
//!
//! Used by the test suites to build structured (Reed–Solomon-like) code
//! vectors with known rank properties, and exposed publicly because it is
//! generally useful alongside the field type.

use core::fmt;

use crate::Gf256;

/// A polynomial over GF(2⁸), stored as coefficients from the constant term
/// upward (`coeffs[i]` multiplies `x^i`).
///
/// The zero polynomial is represented by an empty coefficient vector;
/// construction trims trailing zeros so equality is structural.
///
/// # Examples
///
/// ```
/// use gossamer_gf256::{Gf256, Poly};
///
/// // p(x) = 3 + x
/// let p = Poly::new(vec![Gf256::new(3), Gf256::ONE]);
/// assert_eq!(p.eval(Gf256::ZERO), Gf256::new(3));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// Creates a polynomial from coefficients (constant term first),
    /// trimming trailing zeros.
    #[must_use]
    pub fn new(mut coeffs: Vec<Gf256>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    #[must_use]
    pub const fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(c: Gf256) -> Self {
        Self::new(vec![c])
    }

    /// Returns the degree, or `None` for the zero polynomial.
    #[must_use]
    pub const fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` for the zero polynomial.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Borrows the coefficients (constant term first, no trailing zeros).
    #[must_use]
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Adds two polynomials.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![Gf256::ZERO; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO);
            let b = rhs.coeffs.get(i).copied().unwrap_or(Gf256::ZERO);
            *slot = a + b;
        }
        Self::new(out)
    }

    /// Multiplies two polynomials (schoolbook convolution).
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Self::new(out)
    }

    /// Multiplies by a scalar.
    #[must_use]
    pub fn scale(&self, c: Gf256) -> Self {
        Self::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Lagrange interpolation: the unique polynomial of degree `< n`
    /// passing through the `n` given `(x, y)` points.
    ///
    /// # Panics
    ///
    /// Panics if two `x` values coincide.
    #[must_use]
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Self {
        let mut result = Self::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Basis polynomial l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
            let mut basis = Self::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                // (x - x_j) == (x + x_j) in characteristic 2.
                basis = basis.mul(&Self::new(vec![xj, Gf256::ONE]));
                let diff = xi - xj;
                assert!(!diff.is_zero(), "duplicate interpolation point");
                denom *= diff;
            }
            result = result.add(&basis.scale(yi / denom));
        }
        result
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}·x^{i}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_poly(rng: &mut StdRng, max_deg: usize) -> Poly {
        let deg = rng.random_range(0..=max_deg);
        Poly::new((0..=deg).map(|_| Gf256::new(rng.random())).collect())
    }

    #[test]
    fn zero_polynomial_basics() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Gf256::new(99)), Gf256::ZERO);
        assert_eq!(format!("{z:?}"), "Poly(0)");
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let p = Poly::new(vec![Gf256::ONE, Gf256::ZERO, Gf256::ZERO]);
        assert_eq!(p.degree(), Some(0));
        assert_eq!(p, Poly::constant(Gf256::ONE));
    }

    #[test]
    fn eval_constant_and_linear() {
        let p = Poly::new(vec![Gf256::new(5), Gf256::new(2)]); // 5 + 2x
        assert_eq!(p.eval(Gf256::ZERO), Gf256::new(5));
        let x = Gf256::new(3);
        assert_eq!(p.eval(x), Gf256::new(5) + Gf256::new(2) * x);
    }

    #[test]
    fn addition_is_commutative_and_cancels() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_poly(&mut rng, 6);
        let q = random_poly(&mut rng, 6);
        assert_eq!(p.add(&q), q.add(&p));
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn multiplication_distributes_over_addition() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = random_poly(&mut rng, 4);
            let q = random_poly(&mut rng, 4);
            let r = random_poly(&mut rng, 4);
            assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        }
    }

    #[test]
    fn eval_is_ring_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = random_poly(&mut rng, 5);
            let q = random_poly(&mut rng, 5);
            let x = Gf256::new(rng.random());
            assert_eq!(p.add(&q).eval(x), p.eval(x) + q.eval(x));
            assert_eq!(p.mul(&q).eval(x), p.eval(x) * q.eval(x));
        }
    }

    #[test]
    fn mul_degree_adds() {
        let p = Poly::new(vec![Gf256::ONE, Gf256::ONE]); // deg 1
        let q = Poly::new(vec![Gf256::new(7), Gf256::ZERO, Gf256::new(2)]); // deg 2
        assert_eq!(p.mul(&q).degree(), Some(3));
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let p = random_poly(&mut rng, 7);
            let points: Vec<(Gf256, Gf256)> = (0..=7u8)
                .map(|i| {
                    let x = Gf256::new(i + 1);
                    (x, p.eval(x))
                })
                .collect();
            let q = Poly::interpolate(&points);
            for &(x, y) in &points {
                assert_eq!(q.eval(x), y);
            }
            // Same degree bound + same evaluations at deg+1 points => equal.
            assert_eq!(p, q);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation point")]
    fn interpolation_rejects_duplicates() {
        let pts = [(Gf256::ONE, Gf256::ONE), (Gf256::ONE, Gf256::new(2))];
        let _ = Poly::interpolate(&pts);
    }

    #[test]
    fn scale_by_zero_gives_zero() {
        let p = Poly::new(vec![Gf256::new(3), Gf256::new(4)]);
        assert!(p.scale(Gf256::ZERO).is_zero());
    }
}
