//! # Gossamer
//!
//! Indirect large-scale P2P data collection with random linear network
//! coding — a reproduction of Niu & Li, *Circumventing Server Bottlenecks:
//! Indirect Large-Scale P2P Data Collection*, ICDCS 2008.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`gf256`] — arithmetic over the Galois field GF(2⁸),
//! * [`rlnc`] — segment-based random linear network coding,
//! * [`core`] — the transport-agnostic collection protocol,
//! * [`store`] — the collector's crash-safe write-ahead log,
//! * [`net`] — a TCP deployment of the protocol,
//! * [`sim`] — the discrete-event simulator used for the paper's evaluation,
//! * [`ode`] — the paper's differential-equation model and theorems.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end collection session over
//! the in-memory transport.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use gossamer_core as core;
pub use gossamer_gf256 as gf256;
pub use gossamer_net as net;
pub use gossamer_ode as ode;
pub use gossamer_rlnc as rlnc;
pub use gossamer_sim as sim;
pub use gossamer_store as store;
