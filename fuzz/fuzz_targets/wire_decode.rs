//! Fuzzes the coded-block wire format: `decode` must never panic on any
//! byte string, and whatever it accepts must re-encode to the same bytes.
//! `peek_frame_len` must agree with `decode` about frame boundaries.

#![no_main]

use libfuzzer_sys::fuzz_target;

use gossamer_rlnc::wire;

fuzz_target!(|data: &[u8]| {
    // Never panics; errors are the expected outcome for random bytes.
    let peeked = wire::peek_frame_len(data);
    match wire::decode(data) {
        Ok(block) => {
            // Round-trip identity through the version the frame arrived
            // in: the accepted prefix re-encodes byte for byte, and peek
            // saw exactly that boundary. Legacy frames must come back as
            // legacy, not silently upgraded.
            let reencoded = if data[1] == wire::LEGACY_VERSION {
                wire::encode_legacy(&block)
            } else {
                wire::encode(&block)
            };
            assert_eq!(&data[..reencoded.len()], &reencoded[..]);
            assert_eq!(peeked, Ok(Some(reencoded.len())));
        }
        Err(_) => {
            // peek may be more permissive than decode (it cannot see the
            // CRC), but it must never report a frame longer than the
            // protocol cap.
            if let Ok(Some(len)) = peeked {
                assert!(len <= wire::MAX_FRAME_LEN);
            }
        }
    }
});
