//! Fuzzes the stream codec: `read_frame` over an arbitrary byte stream
//! must never panic or over-allocate, and every message it yields must
//! survive an encode → decode round trip.

#![no_main]

use std::io::Cursor;

use libfuzzer_sys::fuzz_target;

use gossamer_net::codec;

fuzz_target!(|data: &[u8]| {
    let mut reader = Cursor::new(data);
    // Drain the stream: each iteration consumes one frame, ends at clean
    // EOF (Ok(None)), or stops at the first malformed frame.
    loop {
        match codec::read_frame(&mut reader) {
            Ok(Some((from, message))) => {
                let bytes = codec::encode_frame(from, &message);
                let mut replay = Cursor::new(&bytes[..]);
                let (from2, message2) = codec::read_frame(&mut replay)
                    .expect("re-encoded frame must parse")
                    .expect("re-encoded frame must not be EOF");
                assert_eq!(from2, from);
                assert_eq!(message2, message);
            }
            Ok(None) | Err(_) => break,
        }
    }
});
