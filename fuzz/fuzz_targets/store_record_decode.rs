//! Fuzzes the WAL record framing: `decode_record` must never panic on
//! any byte string (it parses whatever a crashed disk left behind), and
//! whatever it accepts must re-encode to the same bytes. It must also
//! agree with `peek_record_len` about record boundaries, since recovery
//! uses the peek to walk the log.

#![no_main]

use libfuzzer_sys::fuzz_target;

use gossamer_store::{decode_record, encode_record, peek_record_len};

fuzz_target!(|data: &[u8]| {
    // Walk the buffer as recovery would: record by record, stopping at
    // the first malformation (a torn tail in a real log).
    let mut rest = data;
    loop {
        let peeked = peek_record_len(rest);
        match decode_record(rest) {
            Ok(Some((record, len))) => {
                assert!(len <= rest.len());
                assert_eq!(peeked, Ok(Some(len)));
                // Round-trip identity: the accepted frame re-encodes
                // byte for byte.
                let reencoded = encode_record(&record).expect("decoded record re-encodes");
                assert_eq!(&rest[..len], &reencoded[..]);
                rest = &rest[len..];
            }
            Ok(None) => {
                // Clean end of log: only an empty buffer qualifies.
                assert!(rest.is_empty());
                break;
            }
            Err(_) => break, // torn or corrupt tail: recovery truncates here
        }
    }
});
