//! Fuzzes the progressive Gaussian-elimination decoder with adversarial
//! coefficient rows: dependent rows, duplicate rows, all-zero rows and
//! arbitrary payloads must never panic, and rank must stay monotone and
//! bounded by the segment size.

#![no_main]

use libfuzzer_sys::fuzz_target;

use gossamer_rlnc::{CodedBlock, Decoder, SegmentId, SegmentParams};

fuzz_target!(|data: &[u8]| {
    let [a, b, rest @ ..] = data else { return };
    let s = 1 + (*a as usize % 8);
    let block_len = 1 + (*b as usize % 16);
    let Ok(params) = SegmentParams::new(s, block_len) else {
        return;
    };
    let mut decoder = Decoder::new(params);
    let segment = SegmentId::new(1);
    let mut previous_rank = 0;
    for chunk in rest.chunks_exact(s + block_len) {
        let (coeffs, payload) = chunk.split_at(s);
        let Ok(block) = CodedBlock::new(segment, coeffs.to_vec(), payload.to_vec()) else {
            continue;
        };
        let _ = decoder.receive(block);
        let rank = decoder.rank_of(segment);
        assert!(rank >= previous_rank, "rank must be monotone nondecreasing");
        assert!(rank <= s, "rank cannot exceed the segment size");
        previous_rank = rank;
        if let Some(done) = decoder.decoded_segment(segment) {
            assert_eq!(done.blocks().len(), s);
            assert!(done.blocks().iter().all(|blk| blk.len() == block_len));
        }
    }
});
