//! Deterministic replay of the fuzz corpus on stable Rust.
//!
//! The coverage-guided targets in `fuzz/` need nightly + libfuzzer; this
//! test replays their checked-in seed corpus — and a deterministic fan of
//! xorshift-derived mutants of every entry — through the *same* harness
//! invariants, so `cargo test` exercises the parsers against adversarial
//! bytes on every run. The mutation schedule is a fixed function of the
//! corpus bytes, so failures reproduce exactly.

use std::fs;
use std::io::Cursor;
use std::path::PathBuf;

use gossamer::core::{Addr, Message};
use gossamer::net::codec;
use gossamer::rlnc::{wire, CodedBlock, Decoder, SegmentId, SegmentParams};
use gossamer::store::{decode_record, encode_record, peek_record_len, WalRecord};

/// Mutants generated per corpus entry.
const MUTANTS_PER_ENTRY: usize = 256;

// ---------------------------------------------------------------------
// Harnesses — these mirror fuzz/fuzz_targets/*.rs. Keep them in sync.
// ---------------------------------------------------------------------

/// `fuzz/fuzz_targets/wire_decode.rs`.
fn wire_decode_harness(data: &[u8]) {
    let peeked = wire::peek_frame_len(data);
    match wire::decode(data) {
        Ok(block) => {
            // Round-trip through the version the frame arrived in: a
            // legacy frame decodes to a provenance-free block and must
            // re-encode byte for byte as legacy, not upgraded.
            let reencoded = if data[1] == wire::LEGACY_VERSION {
                wire::encode_legacy(&block)
            } else {
                wire::encode(&block)
            };
            assert_eq!(&data[..reencoded.len()], &reencoded[..]);
            assert_eq!(peeked, Ok(Some(reencoded.len())));
        }
        Err(_) => {
            if let Ok(Some(len)) = peeked {
                assert!(len <= wire::MAX_FRAME_LEN);
            }
        }
    }
}

/// `fuzz/fuzz_targets/codec_read_frame.rs`.
fn codec_read_frame_harness(data: &[u8]) {
    let mut reader = Cursor::new(data);
    // Drain the stream; stops at clean EOF (Ok(None)) or the first
    // malformed frame (Err).
    while let Ok(Some((from, message))) = codec::read_frame(&mut reader) {
        let bytes = codec::encode_frame(from, &message);
        let mut replay = Cursor::new(&bytes[..]);
        let (from2, message2) = codec::read_frame(&mut replay)
            .expect("re-encoded frame must parse")
            .expect("re-encoded frame must not be EOF");
        assert_eq!(from2, from);
        assert_eq!(message2, message);
    }
}

/// `fuzz/fuzz_targets/decoder_adversarial.rs`.
fn decoder_adversarial_harness(data: &[u8]) {
    let [a, b, rest @ ..] = data else { return };
    let s = 1 + (*a as usize % 8);
    let block_len = 1 + (*b as usize % 16);
    let Ok(params) = SegmentParams::new(s, block_len) else {
        return;
    };
    let mut decoder = Decoder::new(params);
    let segment = SegmentId::new(1);
    let mut previous_rank = 0;
    for chunk in rest.chunks_exact(s + block_len) {
        let (coeffs, payload) = chunk.split_at(s);
        let Ok(block) = CodedBlock::new(segment, coeffs.to_vec(), payload.to_vec()) else {
            continue;
        };
        let _ = decoder.receive(block);
        let rank = decoder.rank_of(segment);
        assert!(rank >= previous_rank, "rank must be monotone nondecreasing");
        assert!(rank <= s, "rank cannot exceed the segment size");
        previous_rank = rank;
        if let Some(done) = decoder.decoded_segment(segment) {
            assert_eq!(done.blocks().len(), s);
            assert!(done.blocks().iter().all(|blk| blk.len() == block_len));
        }
    }
}

/// `fuzz/fuzz_targets/store_record_decode.rs`.
fn store_record_decode_harness(data: &[u8]) {
    // Walk the buffer as recovery would: record by record, stopping at
    // the first malformation (a torn tail in a real log).
    let mut rest = data;
    loop {
        let peeked = peek_record_len(rest);
        match decode_record(rest) {
            Ok(Some((record, len))) => {
                assert!(len <= rest.len());
                assert_eq!(peeked, Ok(Some(len)));
                let reencoded = encode_record(&record).expect("decoded record re-encodes");
                assert_eq!(&rest[..len], &reencoded[..]);
                rest = &rest[len..];
            }
            Ok(None) => {
                assert!(rest.is_empty());
                break;
            }
            Err(_) => break,
        }
    }
}

// ---------------------------------------------------------------------
// Replay driver
// ---------------------------------------------------------------------

/// Xorshift64: tiny, deterministic, good enough to spray bit flips.
struct XorShift64(u64);

impl XorShift64 {
    const fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn corpus_dir(target: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fuzz/corpus")
        .join(target)
}

/// Loads every corpus entry for `target`, sorted by file name so the
/// replay order is stable.
fn corpus(target: &str) -> Vec<(String, Vec<u8>)> {
    let dir = corpus_dir(target);
    let mut entries: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fuzz corpus missing at {}: {e}", dir.display()))
        .map(|entry| {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, fs::read(&path).unwrap())
        })
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus for {target} is empty");
    entries
}

/// Replays each corpus entry verbatim, then `MUTANTS_PER_ENTRY`
/// deterministic mutants of it: bit flips, truncations and extensions,
/// scheduled by a xorshift stream seeded from the entry itself.
fn replay(target: &str, harness: fn(&[u8])) {
    for (name, bytes) in corpus(target) {
        harness(&bytes);
        let seed = bytes.iter().fold(0xDEAD_BEEF_CAFE_F00Du64, |acc, &b| {
            acc.rotate_left(8) ^ u64::from(b)
        }) | 1; // xorshift state must be non-zero
        let mut rng = XorShift64(seed);
        for _ in 0..MUTANTS_PER_ENTRY {
            let mut mutant = bytes.clone();
            match rng.next() % 3 {
                0 if !mutant.is_empty() => {
                    let pos = (rng.next() as usize) % mutant.len();
                    let bit = rng.next() % 8;
                    mutant[pos] ^= 1 << bit;
                }
                1 if !mutant.is_empty() => {
                    let len = (rng.next() as usize) % mutant.len();
                    mutant.truncate(len);
                }
                _ => {
                    mutant.push(rng.next() as u8);
                }
            }
            harness(&mutant);
        }
        // Every prefix must parse or fail cleanly too — the stream reader
        // sees exactly these partial views.
        for cut in 0..bytes.len().min(64) {
            harness(&bytes[..cut]);
        }
        let _ = name;
    }
}

#[test]
fn wire_decode_corpus_replays_clean() {
    replay("wire_decode", wire_decode_harness);
}

#[test]
fn codec_read_frame_corpus_replays_clean() {
    replay("codec_read_frame", codec_read_frame_harness);
}

#[test]
fn decoder_adversarial_corpus_replays_clean() {
    replay("decoder_adversarial", decoder_adversarial_harness);
}

#[test]
fn store_record_decode_corpus_replays_clean() {
    replay("store_record_decode", store_record_decode_harness);
}

// ---------------------------------------------------------------------
// Corpus generation (run explicitly after a wire-format change):
//   cargo test --test fuzz_replay -- --ignored regenerate_corpus
// ---------------------------------------------------------------------

fn sample_block() -> CodedBlock {
    CodedBlock::new(SegmentId::compose(3, 9), vec![1, 2, 3, 4], vec![0xAA; 64]).unwrap()
}

#[test]
#[ignore = "writes the checked-in seed corpus; run after format changes"]
// One flat list of corpus entries; the length IS the inventory.
#[allow(clippy::too_many_lines)]
fn regenerate_corpus() {
    let write = |target: &str, name: &str, bytes: &[u8]| {
        let dir = corpus_dir(target);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(name), bytes).unwrap();
    };

    // --- wire_decode ---
    // Non-zero provenance so the v2-only header fields get fuzzed too.
    let valid = wire::encode(&sample_block().with_provenance(1_234_567, 5));
    write("wire_decode", "valid.bin", &valid);
    write(
        "wire_decode",
        "legacy_valid.bin",
        &wire::encode_legacy(&sample_block()),
    );
    let mut mutated = valid.to_vec();
    mutated[0] = 0x00;
    write("wire_decode", "bad_magic.bin", &mutated);
    let mut mutated = valid.to_vec();
    mutated[1] = 99;
    write("wire_decode", "bad_version.bin", &mutated);
    let mut mutated = valid.to_vec();
    mutated[10] = 0; // s = 0
    write("wire_decode", "zero_dims.bin", &mutated);
    let mut huge = vec![wire::MAGIC, wire::VERSION];
    huge.extend_from_slice(&7u64.to_be_bytes());
    huge.push(4);
    huge.extend_from_slice(&u32::MAX.to_be_bytes());
    huge.extend_from_slice(&[0u8; 32]);
    write("wire_decode", "huge_len.bin", &huge);
    write("wire_decode", "truncated.bin", &valid[..valid.len() / 2]);
    let mut flipped = valid.to_vec();
    let last = flipped.len() - 1;
    flipped[last] ^= 0xFF; // CRC trailer corruption
    write("wire_decode", "crc_flip.bin", &flipped);
    let mut stream = valid.to_vec();
    stream.extend_from_slice(&valid);
    stream.extend_from_slice(b"trailing garbage");
    write("wire_decode", "two_frames.bin", &stream);

    // --- codec_read_frame ---
    let addr = Addr(42);
    write(
        "codec_read_frame",
        "gossip.bin",
        &codec::encode_frame(addr, &Message::Gossip(sample_block())),
    );
    write(
        "codec_read_frame",
        "ack.bin",
        &codec::encode_frame(
            addr,
            &Message::GossipAck {
                segment: SegmentId::compose(3, 9),
                rank: 2,
                accepted: true,
            },
        ),
    );
    write(
        "codec_read_frame",
        "pull_request.bin",
        &codec::encode_frame(addr, &Message::PullRequest),
    );
    write(
        "codec_read_frame",
        "pull_response_none.bin",
        &codec::encode_frame(addr, &Message::PullResponse(None)),
    );
    write(
        "codec_read_frame",
        "announce.bin",
        &codec::encode_frame(
            addr,
            &Message::DecodedAnnounce {
                segments: vec![SegmentId::new(1), SegmentId::new(2)],
            },
        ),
    );
    let gossip = codec::encode_frame(addr, &Message::Gossip(sample_block()));
    write(
        "codec_read_frame",
        "truncated.bin",
        &gossip[..gossip.len() / 2],
    );
    let mut oversized = (codec::MAX_FRAME as u32 + 1).to_be_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 16]);
    write("codec_read_frame", "oversized_len.bin", &oversized);
    let mut bad_type = gossip;
    bad_type[8] = 0xEE; // type byte after len (4) + from (4)
    write("codec_read_frame", "bad_type.bin", &bad_type);

    // --- decoder_adversarial ---
    // s = 4, block_len = 8; systematic rows decode the segment fully.
    let mut identity = vec![3, 7]; // 1 + 3%8 = 4, 1 + 7%16 = 8
    for i in 0..4usize {
        let mut row = vec![0u8; 4];
        row[i] = 1;
        identity.extend_from_slice(&row);
        identity.extend_from_slice(&[i as u8 + 1; 8]);
    }
    write("decoder_adversarial", "identity.bin", &identity);
    // Duplicate and linearly dependent rows.
    let mut dependent = vec![3, 7];
    for _ in 0..3 {
        dependent.extend_from_slice(&[1, 2, 3, 4]);
        dependent.extend_from_slice(&[0x55; 8]);
    }
    write("decoder_adversarial", "dependent_rows.bin", &dependent);
    // All-zero coefficient rows: vacuous, never innovative.
    let mut zeros = vec![3, 7];
    for _ in 0..4 {
        zeros.extend_from_slice(&[0, 0, 0, 0]);
        zeros.extend_from_slice(&[0xFF; 8]);
    }
    write("decoder_adversarial", "zero_rows.bin", &zeros);

    // --- store_record_decode ---
    let decoded = encode_record(&WalRecord::Decoded {
        id: SegmentId::compose(3, 9),
        blocks: vec![vec![0xAB; 64]; 4],
    })
    .unwrap();
    write("store_record_decode", "decoded.bin", &decoded);
    let checkpoint = encode_record(&WalRecord::Checkpoint {
        frames: vec![wire::encode(&sample_block()).to_vec(); 3],
    })
    .unwrap();
    write("store_record_decode", "checkpoint.bin", &checkpoint);
    let abandoned = encode_record(&WalRecord::Abandoned {
        ids: vec![SegmentId::new(7), SegmentId::compose(1, 2)],
    })
    .unwrap();
    write("store_record_decode", "abandoned.bin", &abandoned);
    let taken = encode_record(&WalRecord::RecordsTaken { total: 12_345 }).unwrap();
    write("store_record_decode", "records_taken.bin", &taken);
    // A realistic log stream: several records back to back, then a torn
    // tail (recovery's everyday input).
    let mut stream = decoded.clone();
    stream.extend_from_slice(&abandoned);
    stream.extend_from_slice(&taken);
    stream.extend_from_slice(&checkpoint);
    stream.extend_from_slice(&decoded[..decoded.len() / 3]);
    write("store_record_decode", "log_stream.bin", &stream);
    let mut crc_flip = decoded.clone();
    let last = crc_flip.len() - 1;
    crc_flip[last] ^= 0xFF;
    write("store_record_decode", "crc_flip.bin", &crc_flip);
    let mut bad_kind = decoded.clone();
    bad_kind[2] = 0x7F;
    write("store_record_decode", "bad_kind.bin", &bad_kind);
    let mut huge = vec![0x77, 0x01, 1];
    huge.extend_from_slice(&u32::MAX.to_be_bytes());
    huge.extend_from_slice(&[0u8; 16]);
    write("store_record_decode", "huge_len.bin", &huge);
}
