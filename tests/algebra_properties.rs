//! Deterministic property-based tests for the coding algebra.
//!
//! The proptest suites in `crates/*/tests` need the real `proptest`
//! crate, which offline builds stub out (`--features proptests` enables
//! them where it exists). This suite checks the same four property
//! families — GF(2⁸) field axioms, slice-kernel vs scalar equivalence,
//! encode → recode → decode round-trip identity, and rank monotonicity —
//! with a self-contained `SplitMix64` case generator, so they run under
//! plain `cargo test -q` everywhere. Every case derives from a fixed
//! seed: a failure reproduces exactly.

use gossamer::gf256::{slice, Gf256};
use gossamer::rlnc::{CodedBlock, Decoder, SegmentBuffer, SegmentId, SegmentParams, SourceSegment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `SplitMix64`: the canonical 64-bit mixer; tiny and deterministic.
struct SplitMix64(u64);

impl SplitMix64 {
    const fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    const fn byte(&mut self) -> u8 {
        self.next() as u8
    }

    /// Uniform-ish value in `lo..=hi`.
    const fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.byte()).collect()
    }
}

#[test]
fn field_axioms_hold() {
    // Commutativity of both operations: exhaustive over all 2^16 pairs.
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            let (a, b) = (Gf256::new(a), Gf256::new(b));
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
        }
    }
    // Identities and inverses: exhaustive over all elements.
    for a in 0..=255u8 {
        let a = Gf256::new(a);
        assert_eq!(a + Gf256::ZERO, a);
        assert_eq!(a * Gf256::ONE, a);
        assert_eq!(a + a, Gf256::ZERO, "characteristic 2: -a == a");
        if a.is_zero() {
            assert!(a.inv().is_none());
        } else {
            assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
        }
    }
    // Associativity and distributivity: sampled triples.
    let mut rng = SplitMix64(0x5EED_0001);
    for _ in 0..100_000 {
        let a = Gf256::new(rng.byte());
        let b = Gf256::new(rng.byte());
        let c = Gf256::new(rng.byte());
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

#[test]
fn slice_kernels_match_scalar_reference() {
    let mut rng = SplitMix64(0x5EED_0002);
    for _ in 0..500 {
        // Lengths straddling the kernels' 8-byte chunk boundary.
        let n = rng.range(0, 65);
        let c = Gf256::new(rng.byte());
        let data = rng.bytes(n);
        let acc = rng.bytes(n);

        let mut added = acc.clone();
        slice::add_assign(&mut added, &data);
        let scalar_add: Vec<u8> = acc
            .iter()
            .zip(&data)
            .map(|(&x, &y)| (Gf256::new(x) + Gf256::new(y)).value())
            .collect();
        assert_eq!(added, scalar_add);

        let mut scaled = data.clone();
        slice::scale_assign(&mut scaled, c);
        let scalar_scale: Vec<u8> = data.iter().map(|&x| (c * Gf256::new(x)).value()).collect();
        assert_eq!(scaled, scalar_scale);

        let mut axpyed = acc.clone();
        slice::axpy(&mut axpyed, c, &data);
        let scalar_axpy: Vec<u8> = acc
            .iter()
            .zip(&data)
            .map(|(&a, &x)| (Gf256::new(a) + c * Gf256::new(x)).value())
            .collect();
        assert_eq!(axpyed, scalar_axpy);

        let scalar_dot = acc
            .iter()
            .zip(&data)
            .fold(Gf256::ZERO, |s, (&a, &x)| s + Gf256::new(a) * Gf256::new(x));
        assert_eq!(slice::dot(&acc, &data), scalar_dot);
    }
}

#[test]
fn encode_recode_decode_is_the_identity() {
    let mut rng = SplitMix64(0x5EED_0003);
    for case in 0..50 {
        let s = rng.range(1, 16);
        let block_len = rng.range(1, 64);
        let params = SegmentParams::new(s, block_len).unwrap();
        let id = SegmentId::new(case);
        let blocks: Vec<Vec<u8>> = (0..s).map(|_| rng.bytes(block_len)).collect();
        let source = SourceSegment::new(id, params, blocks.clone()).unwrap();

        // Source → relay: emit random coded blocks until the relay holds
        // the full subspace (each emission is innovative w.h.p., so the
        // bound is generous).
        let mut emit_rng = StdRng::seed_from_u64(rng.next());
        let mut relay = SegmentBuffer::new(id, params);
        for _ in 0..100 * s {
            if relay.is_full() {
                break;
            }
            relay.insert(source.emit(&mut emit_rng)).unwrap();
        }
        assert!(relay.is_full(), "relay never reached full rank (s={s})");

        // Relay → collector: the collector sees only *recoded* blocks,
        // never the source's. This is the paper's core mechanism.
        let mut collector = Decoder::new(params);
        let mut completed = None;
        for _ in 0..100 * s {
            let recoded = relay.recode(&mut emit_rng).expect("relay is non-empty");
            if let Some(segment) = collector.receive(recoded).unwrap() {
                completed = Some(segment);
                break;
            }
        }
        let completed = completed.expect("collector never completed the segment");
        assert_eq!(completed.id(), id);
        assert_eq!(completed.blocks(), &blocks[..], "round trip must be exact");
    }
}

#[test]
fn decoder_rank_is_monotone_and_bounded_under_adversarial_rows() {
    let mut rng = SplitMix64(0x5EED_0004);
    for case in 0..50 {
        let s = rng.range(1, 8);
        let block_len = rng.range(1, 16);
        let params = SegmentParams::new(s, block_len).unwrap();
        let id = SegmentId::new(case);
        let mut decoder = Decoder::new(params);
        let mut previous_rank = 0;
        for step in 0..6 * s {
            // Adversarial mix: zero rows, duplicate-prone sparse rows and
            // dense random rows, with payloads unrelated to any source.
            let coeffs: Vec<u8> = match step % 3 {
                0 => vec![0; s],
                1 => {
                    let mut row = vec![0; s];
                    row[rng.range(0, s - 1)] = rng.byte();
                    row
                }
                _ => rng.bytes(s),
            };
            let block = CodedBlock::new(id, coeffs, rng.bytes(block_len)).unwrap();
            let _ = decoder.receive(block);
            let rank = decoder.rank_of(id);
            assert!(rank >= previous_rank, "rank must be monotone");
            assert!(rank <= s, "rank cannot exceed the segment size");
            previous_rank = rank;
        }
    }
}
