//! Workspace-level integration tests: the whole stack, crossing crate
//! boundaries the way a downstream user would.

use gossamer::core::{Addr, CollectorConfig, MemoryNetwork, NodeConfig};
use gossamer::rlnc::SegmentParams;

fn params() -> SegmentParams {
    SegmentParams::new(4, 64).unwrap()
}

fn node_config() -> NodeConfig {
    NodeConfig::builder(params())
        .gossip_rate(10.0)
        .expiry_rate(0.02)
        .buffer_cap(512)
        .build()
        .unwrap()
}

fn collector_config() -> CollectorConfig {
    CollectorConfig::builder(params())
        .pull_rate(80.0)
        .build()
        .unwrap()
}

/// The full protocol pipeline: records → segmenter → RLNC → gossip →
/// pull → decode → reassembly, across 25 peers.
#[test]
fn full_pipeline_recovers_all_records() {
    let mut net = MemoryNetwork::new(1);
    let peers: Vec<Addr> = (0..25).map(|_| net.add_peer(node_config())).collect();
    let collector = net.add_collector(collector_config());

    let mut expected = Vec::new();
    for (i, &p) in peers.iter().enumerate() {
        for j in 0..3 {
            let record = format!("peer {i} sample {j}: delay={}ms", 10 * j + i);
            net.record(p, record.as_bytes()).unwrap();
            expected.push(record.into_bytes());
        }
        net.flush(p);
    }
    // Long enough that completion is far inside the tail of the
    // coupon-collector distribution for any RNG stream.
    net.run_for(30.0, 0.02);

    let mut got = net.collector_mut(collector).take_records();
    got.sort();
    expected.sort();
    assert_eq!(got, expected);
}

/// Loss, churn and buffer pressure at once: the protocol must degrade
/// gracefully, never panic, and still recover a useful fraction.
#[test]
fn survives_combined_failure_injection() {
    let mut net = MemoryNetwork::new(2);
    let peers: Vec<Addr> = (0..20).map(|_| net.add_peer(node_config())).collect();
    let collector = net.add_collector(collector_config());
    net.set_loss_rate(0.2);

    for (i, &p) in peers.iter().enumerate() {
        net.record(p, format!("under fire {i}").as_bytes()).unwrap();
        net.flush(p);
    }
    net.run_for(3.0, 0.02);
    // A third of the population departs mid-collection.
    for &p in &peers[..7] {
        net.remove_peer(p);
    }
    net.run_for(12.0, 0.02);

    let records = net.collector_mut(collector).take_records();
    assert!(
        records.len() >= 15,
        "expected most records to survive 20% loss + 35% churn, got {}",
        records.len()
    );
    assert!(net.messages_dropped() > 0);
}

/// The ODE model, the simulator and the protocol library must tell one
/// consistent story about storage: Theorem 1's ρ bound holds everywhere.
#[test]
fn storage_overhead_is_consistent_across_stack() {
    let (lambda, mu, gamma) = (4.0, 2.0, 0.5);
    let t1 = gossamer::ode::theorems::storage_overhead(lambda, mu, gamma);
    assert!(t1.overhead < mu / gamma);

    let config = gossamer::sim::SimConfig::builder()
        .peers(200)
        .lambda(lambda)
        .mu(mu)
        .gamma(gamma)
        .segment_size(2)
        .normalized_server_capacity(1.0)
        // A long window keeps the time-average's seed-to-seed spread
        // well inside the assertion's margin.
        .warmup(20.0)
        .measure(40.0)
        .seed(3)
        .build()
        .unwrap();
    let report = gossamer::sim::Simulation::new(config).unwrap().run();
    let rel = (report.storage.mean_blocks_per_peer - t1.rho).abs() / t1.rho;
    assert!(
        rel < 0.08,
        "sim storage {} vs theorem rho {} (rel {rel})",
        report.storage.mean_blocks_per_peer,
        t1.rho
    );
}

/// Facade re-exports stay wired: every subsystem is reachable through
/// the `gossamer` crate.
#[test]
fn facade_exposes_all_subsystems() {
    // net: just reference the type to keep the re-export honest.
    fn takes_cluster(_c: &gossamer::net::LocalCluster) {
        unreachable!("type-level reference only");
    }
    let _ = takes_cluster;
    let field = gossamer::gf256::Gf256::GENERATOR;
    assert!(!field.is_zero());
    let params = gossamer::rlnc::SegmentParams::new(2, 8).unwrap();
    let cfg = gossamer::core::NodeConfig::builder(params).build().unwrap();
    let _ = cfg;
    let sim = gossamer::sim::SimConfig::builder().build().unwrap();
    let _ = sim;
    let ode = gossamer::ode::ModelParams::builder().build().unwrap();
    let _ = ode;
}

/// A session that outlives its TTL: records fed early expire before
/// collection starts, demonstrating the timeliness/persistence knob.
#[test]
fn expired_data_is_gone_slow_collector_misses_it() {
    let fast_expiry = NodeConfig::builder(params())
        .gossip_rate(10.0)
        .expiry_rate(2.0) // blocks live ~0.5 s
        .buffer_cap(512)
        .build()
        .unwrap();
    let mut net = MemoryNetwork::new(4);
    let peers: Vec<Addr> = (0..10).map(|_| net.add_peer(fast_expiry.clone())).collect();
    // No collector yet: nothing pulls while the data decays.
    for (i, &p) in peers.iter().enumerate() {
        net.record(p, format!("ephemeral {i}").as_bytes()).unwrap();
        net.flush(p);
    }
    net.run_for(10.0, 0.02); // ~20 TTLs pass
    let collector = net.add_collector(collector_config());
    net.run_for(8.0, 0.02);
    let records = net.collector_mut(collector).take_records();
    assert!(
        records.len() <= 2,
        "data should have expired before the collector arrived, got {}",
        records.len()
    );
}
