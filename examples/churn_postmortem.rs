//! Post-mortem diagnostics: recovering the last words of departed peers.
//!
//! Run with: `cargo run --example churn_postmortem`
//!
//! The paper's sharpest observation: "peers tend to leave soon after the
//! quality degrades, such statistics from departed peers may be the most
//! useful to diagnose system outages". Here, peers log degrading `QoS`
//! measurements and then abruptly quit. Because their diagnostics were
//! gossiped as coded blocks first, the collector can still reconstruct
//! them after the peers are gone.

use gossamer::core::{Addr, CollectorConfig, MemoryNetwork, NodeConfig};
use gossamer::rlnc::SegmentParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SegmentParams::new(4, 96)?;
    let node_config = NodeConfig::builder(params)
        .gossip_rate(12.0)
        .expiry_rate(0.02)
        .buffer_cap(512)
        .build()?;
    let collector_config = CollectorConfig::builder(params).pull_rate(50.0).build()?;

    let mut net = MemoryNetwork::new(5);
    let peers: Vec<Addr> = (0..16).map(|_| net.add_peer(node_config.clone())).collect();
    let collector = net.add_collector(collector_config);

    // Eight victims log a degradation trail, then leave 1.5 s later —
    // before the (slow) collector is likely to have probed them.
    let victims = &peers[..8];
    for (i, &peer) in victims.iter().enumerate() {
        for step in 0..3 {
            let record = format!(
                "victim={i} t-{} buffer_draining bitrate={}kbps",
                3 - step,
                700 - 200 * step
            );
            net.record(peer, record.as_bytes())?;
        }
        net.flush(peer);
    }
    net.run_for(1.5, 0.01);
    for &peer in victims {
        net.remove_peer(peer);
    }
    println!(
        "8 peers departed at t={:.1}s; collecting their diagnostics...",
        net.now()
    );

    // Delayed collection from the surviving swarm.
    net.run_for(20.0, 0.01);

    let records = net.collector_mut(collector).take_records();
    let victim_records: Vec<_> = records
        .iter()
        .filter(|r| r.starts_with(b"victim="))
        .collect();
    println!(
        "recovered {} of 24 post-mortem records from departed peers",
        victim_records.len()
    );
    for r in victim_records.iter().take(6) {
        println!("  {}", String::from_utf8_lossy(r));
    }
    assert!(
        victim_records.len() >= 18,
        "most departed peers' diagnostics should be recoverable, got {}",
        victim_records.len()
    );
    Ok(())
}
