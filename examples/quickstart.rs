//! Quickstart: collect log records from a small peer swarm, indirectly.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Twenty peers each log a measurement. Instead of uploading to a
//! server, they gossip RLNC-coded blocks to each other; a single
//! collector with modest pull capacity probes random peers and decodes
//! everything.

use gossamer::core::{CollectorConfig, MemoryNetwork, NodeConfig};
use gossamer::rlnc::SegmentParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Deployment-wide coding layout: segments of 4 blocks, 64 B each.
    let params = SegmentParams::new(4, 64)?;

    let node_config = NodeConfig::builder(params)
        .gossip_rate(8.0) // μ: eight coded blocks pushed per second
        .expiry_rate(0.0) // γ: keep logs until collected (TTL demos live elsewhere)
        .buffer_cap(256) // B: at most 256 blocks buffered
        .build()?;
    let collector_config = CollectorConfig::builder(params)
        .pull_rate(60.0) // c_s: sixty pulls per second
        .build()?;

    let mut net = MemoryNetwork::new(2024);
    for _ in 0..20 {
        net.add_peer(node_config.clone());
    }
    let collector = net.add_collector(collector_config);

    for (i, peer) in net.peer_addrs().into_iter().enumerate() {
        let record = format!("peer={i} cpu=42% bitrate=768kbps viewers={}", 100 + i);
        net.record(peer, record.as_bytes())?;
        net.flush(peer); // pad the partial segment so it is collectable now
    }

    // Let gossip and pulls run for twelve simulated seconds.
    net.run_for(12.0, 0.01);

    let collector = net.collector_mut(collector);
    let mut records = collector.take_records();
    records.sort();
    println!("recovered {} records:", records.len());
    for r in &records {
        println!("  {}", String::from_utf8_lossy(r));
    }
    println!(
        "collector efficiency (innovative/received): {:.1}%",
        collector.efficiency() * 100.0
    );
    assert_eq!(records.len(), 20, "every record should be recovered");
    Ok(())
}
