//! Streaming-telemetry scenario: the workload the paper's introduction
//! motivates.
//!
//! Run with: `cargo run --example streaming_telemetry`
//!
//! A P2P live-streaming session wants per-peer `QoS` telemetry (bitrate,
//! buffer level, packet loss) every few hundred milliseconds — far more
//! than a logging server could ingest directly at peak. Peers feed their
//! telemetry into gossamer; two collectors provisioned for *average*
//! load recover the records, and we aggregate a `QoS` summary from them.

use gossamer::core::telemetry::{MetricValue, TelemetryRecord};
use gossamer::core::{Addr, CollectorConfig, MemoryNetwork, NodeConfig};
use gossamer::rlnc::SegmentParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const PEERS: usize = 40;
const SESSION_SECONDS: f64 = 30.0;
const REPORT_INTERVAL: f64 = 0.4; // each peer logs ~2.5 records/s

fn telemetry_record(peer: usize, t: f64, rng: &mut StdRng) -> Vec<u8> {
    let mut record = TelemetryRecord::new(peer as u32, (t * 1000.0) as u64);
    record.push(
        "bitrate_kbps",
        MetricValue::Integer(600 + (rng.random::<u32>() % 400) as i64),
    );
    record.push(
        "buffer_ms",
        MetricValue::Integer(800 + (rng.random::<u32>() % 2400) as i64),
    );
    record.push("loss_pct", MetricValue::Float(rng.random::<f64>() * 2.0));
    record.encode()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SegmentParams::new(4, 128)?;
    let node_config = NodeConfig::builder(params)
        .gossip_rate(16.0)
        .expiry_rate(0.08)
        .buffer_cap(1024)
        .build()?;
    let collector_config = CollectorConfig::builder(params).pull_rate(250.0).build()?;

    let mut net = MemoryNetwork::new(7);
    let peers: Vec<Addr> = (0..PEERS)
        .map(|_| net.add_peer(node_config.clone()))
        .collect();
    let collectors = [
        net.add_collector(collector_config.clone()),
        net.add_collector(collector_config),
    ];

    let mut rng = StdRng::seed_from_u64(99);
    let mut produced = 0u64;
    let mut t = 0.0;
    while t < SESSION_SECONDS {
        // Every REPORT_INTERVAL, each peer logs one telemetry record.
        for (i, &peer) in peers.iter().enumerate() {
            let record = telemetry_record(i, t, &mut rng);
            net.record(peer, &record)?;
            produced += 1;
        }
        net.run_for(REPORT_INTERVAL, 0.02);
        t += REPORT_INTERVAL;
    }
    // Session ends: flush partial segments and let the collectors drain
    // the network's buffered data in a delayed fashion.
    for &peer in &peers {
        net.flush(peer);
    }
    net.run_for(25.0, 0.02);

    let mut recovered: Vec<Vec<u8>> = Vec::new();
    for &c in &collectors {
        recovered.extend(net.collector_mut(c).take_records());
    }
    // Two independent collectors may decode the same segment; dedupe.
    recovered.sort();
    recovered.dedup();

    // Decode typed telemetry and aggregate a QoS summary.
    let mut bitrates = Vec::new();
    let mut worst_loss = 0.0f64;
    for bytes in &recovered {
        let record = TelemetryRecord::decode(bytes)?;
        if let Some(MetricValue::Integer(b)) = record.get("bitrate_kbps") {
            bitrates.push(*b as f64);
        }
        if let Some(MetricValue::Float(l)) = record.get("loss_pct") {
            worst_loss = worst_loss.max(*l);
        }
    }
    let mean_bitrate = bitrates.iter().sum::<f64>() / bitrates.len().max(1) as f64;

    println!("telemetry records produced : {produced}");
    println!("telemetry records recovered: {}", recovered.len());
    println!(
        "recovery rate              : {:.1}%",
        recovered.len() as f64 / produced as f64 * 100.0
    );
    println!("mean reported bitrate      : {mean_bitrate:.0} kbps");
    println!("worst reported loss        : {worst_loss:.2}%");
    assert!(
        recovered.len() as f64 > 0.9 * produced as f64,
        "collectors should recover the vast majority of telemetry"
    );
    Ok(())
}
