//! Why the paper uses RLNC instead of a fixed-rate erasure code.
//!
//! Run with: `cargo run --release --example erasure_vs_rlnc`
//!
//! The paper's related work (Dimakis et al.) spreads data with
//! decentralized *erasure codes*; gossamer's protocol instead recodes
//! with RLNC at every hop. This example makes the difference concrete:
//! spread blocks through a relay chain where each relay only gets a
//! partial view, and count how often the collector can reconstruct.
//!
//! * **Reed–Solomon**: the source makes n fixed shares; relays can only
//!   forward what they hold; duplicated shares across relays are pure
//!   waste. As the chain thins out the share *diversity*, decodes fail
//!   even though plenty of bytes arrived.
//! * **RLNC**: every relay emits fresh random combinations of whatever
//!   it holds, so any `s` receptions from rank-`s` upstream state
//!   suffice (up to the ≈1/256 dependence probability).

use gossamer::rlnc::{ReedSolomon, SegmentBuffer, SegmentId, SegmentParams, SourceSegment};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const TRIALS: usize = 400;
const S: usize = 8; // data blocks / segment size
const SHARES: usize = 16; // RS expansion
const RELAYS: usize = 4;
const PER_RELAY: usize = 4; // blocks each relay receives from the source
const TO_COLLECTOR: usize = 12; // blocks the collector receives in total

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let params = SegmentParams::new(S, 32)?;
    let blocks: Vec<Vec<u8>> = (0..S)
        .map(|_| (0..32).map(|_| rng.random()).collect())
        .collect();

    let mut rs_success = 0;
    let mut rlnc_success = 0;

    for _ in 0..TRIALS {
        // ---- Reed–Solomon path -------------------------------------
        let rs = ReedSolomon::new(S, SHARES)?;
        let shares = rs.encode(&blocks)?;
        // Each relay holds PER_RELAY *random* shares (with overlap
        // across relays — nobody coordinates).
        let relay_holdings: Vec<Vec<usize>> = (0..RELAYS)
            .map(|_| {
                (0..PER_RELAY)
                    .map(|_| rng.random_range(0..SHARES))
                    .collect()
            })
            .collect();
        // The collector receives TO_COLLECTOR forwarded shares from
        // random relays (which can only send what they hold).
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..TO_COLLECTOR {
            let relay = &relay_holdings[rng.random_range(0..RELAYS)];
            seen.insert(relay[rng.random_range(0..relay.len())]);
        }
        if seen.len() >= S {
            let kept: Vec<(usize, &[u8])> = seen
                .iter()
                .take(S)
                .map(|&i| (i, shares[i].as_slice()))
                .collect();
            if rs.reconstruct(&kept).is_ok() {
                rs_success += 1;
            }
        }

        // ---- RLNC path ----------------------------------------------
        let src = SourceSegment::new(SegmentId::new(1), params, blocks.clone())?;
        let mut relays: Vec<SegmentBuffer> = (0..RELAYS)
            .map(|_| SegmentBuffer::new(SegmentId::new(1), params))
            .collect();
        for relay in &mut relays {
            for _ in 0..PER_RELAY {
                relay.insert(src.emit(&mut rng))?;
            }
        }
        let mut collector = SegmentBuffer::new(SegmentId::new(1), params);
        for _ in 0..TO_COLLECTOR {
            let relay = &relays[rng.random_range(0..RELAYS)];
            if let Some(block) = relay.recode(&mut rng) {
                collector.insert(block)?;
            }
        }
        if collector.is_full() {
            rlnc_success += 1;
        }
    }

    println!(
        "setup: s={S}, {RELAYS} relays x {PER_RELAY} receptions, collector gets {TO_COLLECTOR} blocks"
    );
    println!(
        "reed-solomon decode rate: {:5.1}%  (fixed shares; duplicates are waste)",
        100.0 * rs_success as f64 / TRIALS as f64
    );
    println!(
        "rlnc decode rate:         {:5.1}%  (relays recode; every block is fresh)",
        100.0 * rlnc_success as f64 / TRIALS as f64
    );
    assert!(
        rlnc_success > rs_success,
        "recoding must beat fixed shares in this regime"
    );
    Ok(())
}
