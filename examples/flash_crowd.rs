//! Flash-crowd comparison: traditional direct pulls vs indirect
//! collection when the server is the bottleneck (the paper's Fig. 1
//! motivation, using the discrete-event simulator).
//!
//! Run with: `cargo run --release --example flash_crowd`
//!
//! Scenario: a flash crowd generates statistics for 10 time units at
//! four times the servers' aggregate pull capacity, with peers churning
//! (mean lifetime 2). Generation then stops and the servers get another
//! 40 time units to drain whatever is still reachable — the paper's
//! "delayed delivery".
//!
//! * **Direct pulls** (Fig. 1(a)): data lives only at its origin. What
//!   the servers did not fetch before the origin departed is gone.
//! * **Indirect collection** (Fig. 1(b)): coded copies were gossiped
//!   across the network, so collection continues after the originators
//!   left.
//!
//! The direct baseline runs without segmentation (`s = 1`, every pulled
//! block is immediately usable) so the comparison does not handicap it
//! with coupon-collector effects it would never face in practice.
//!
//! The outcome is deliberately nuanced, matching the paper's own Fig. 4
//! discussion: under *moderate* churn the indirect scheme recovers more
//! data (replication outruns departures); under extreme churn the
//! segment quantization and replication lag eat the advantage, and in a
//! static network blind coupon-collector pulls make it strictly less
//! pull-efficient than direct fetches. Where the indirect design is
//! unambiguously ahead is (a) server provisioning — the same recovery
//! with bandwidth sized for the *average* load, the paper's headline —
//! and (b) post-mortem recovery of departed peers' records, which the
//! `churn_postmortem` example demonstrates at the protocol level with
//! the production policy (source priming) enabled.

use gossamer::sim::{Scheme, SimConfig, SimReport, Simulation};

const BURST_END: f64 = 2.0;
const DRAIN_END: f64 = 60.0;

fn run(scheme: Scheme, churn: Option<f64>) -> SimReport {
    let s = match scheme {
        Scheme::Indirect => 2,
        Scheme::DirectPull => 1,
    };
    let mut builder = SimConfig::builder()
        .peers(300)
        .lambda(8.0)
        .mu(32.0)
        .gamma(0.0) // logs kept until collected; loss only via departure
        .segment_size(s)
        .servers(3)
        .normalized_server_capacity(1.0) // an eighth of the burst demand
        .scheme(scheme)
        .generation_until(BURST_END)
        .warmup(0.0)
        .measure(DRAIN_END)
        .seed(42);
    if let Some(lifetime) = churn {
        builder = builder.churn(lifetime);
    }
    Simulation::new(builder.build().expect("valid config"))
        .expect("sim builds")
        .run()
}

fn main() {
    println!(
        "{:<10} {:<12} {:>10} {:>12} {:>14}",
        "scheme", "churn", "injected", "recovered", "recovered %"
    );
    let mut recovered = std::collections::HashMap::new();
    for (label, churn) in [
        ("static", None),
        ("lifetime=4", Some(4.0)),
        ("lifetime=2", Some(2.0)),
        ("lifetime=1", Some(1.0)),
    ] {
        for (name, scheme) in [
            ("direct", Scheme::DirectPull),
            ("indirect", Scheme::Indirect),
        ] {
            let r = run(scheme, churn);
            recovered.insert((name, label), r.throughput.delivered_fraction);
            println!(
                "{:<10} {:<12} {:>10} {:>12} {:>13.1}%",
                name,
                label,
                r.throughput.injected_blocks,
                r.throughput.delivered_blocks,
                r.throughput.delivered_fraction * 100.0,
            );
        }
    }
    println!();
    println!("burst: t < {BURST_END}, demand 4x server capacity; drain until t = {DRAIN_END}");
    let gain = recovered[&("indirect", "lifetime=4")] / recovered[&("direct", "lifetime=4")];
    println!("under moderate churn (lifetime 4), indirect recovers {gain:.2}x as much data");
    assert!(
        gain > 1.02,
        "indirect should beat direct under moderate churn, got {gain:.3}"
    );
}
