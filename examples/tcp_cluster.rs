//! Real-socket demo: the full protocol over TCP on loopback.
//!
//! Run with: `cargo run --example tcp_cluster`
//!
//! Boots ten peer daemons and one collector daemon, each with its own
//! listener, connection pool and timer threads, and collects telemetry
//! over actual TCP connections (length-prefixed frames, CRC-protected
//! coded blocks).

use std::time::{Duration, Instant};

use gossamer::core::{CollectorConfig, NodeConfig};
use gossamer::net::LocalCluster;
use gossamer::rlnc::SegmentParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SegmentParams::new(4, 64)?;
    let node_config = NodeConfig::builder(params)
        .gossip_rate(40.0)
        .expiry_rate(0.02)
        .buffer_cap(512)
        .build()?;
    let collector_config = CollectorConfig::builder(params).pull_rate(150.0).build()?;

    let cluster = LocalCluster::start(10, node_config, 1, collector_config, 99)?;
    println!("cluster up: 10 peers + 1 collector on loopback");

    for i in 0..cluster.peer_count() {
        cluster
            .peer(i)
            .record(format!("peer {i}: jitter=4ms uplink=1.2Mbps").as_bytes())?;
        cluster.peer(i).flush()?;
    }

    let start = Instant::now();
    while cluster.collector(0).segments_decoded() < 10 && start.elapsed() < Duration::from_secs(20)
    {
        std::thread::sleep(Duration::from_millis(100));
    }

    let records = cluster.collector(0).take_records()?;
    let stats = cluster.collector(0).stats();
    println!(
        "decoded {} segments, recovered {} records in {:.1}s",
        stats.segments_decoded,
        records.len(),
        start.elapsed().as_secs_f64()
    );
    for r in records.iter().take(4) {
        println!("  {}", String::from_utf8_lossy(r));
    }
    println!(
        "pulls sent={} blocks={} redundant={}",
        stats.pulls_sent, stats.blocks_received, stats.redundant_blocks
    );
    cluster.shutdown();
    assert_eq!(stats.segments_decoded, 10);
    Ok(())
}
