//! Parameter advisor: the paper's Sec. 4 design guidance as a tool.
//!
//! Run with: `cargo run --release --example parameter_advisor -- \
//!            [lambda] [mu] [gamma] [capacity]`
//!
//! Given a deployment's rates, this sweeps the segment size `s` through
//! the paper's model and reports, for each candidate:
//!
//! * normalized session throughput vs the capacity ceiling (Theorem 2),
//! * the block-delay estimator (Theorem 3),
//! * storage overhead (Theorem 1 — independent of `s`, shown once),
//! * data buffered for delayed delivery (Theorem 4),
//!
//! then recommends the smallest `s` that achieves ≥99% of the capacity
//! ceiling *and* sits past the block-delay peak — the paper's own
//! conclusion ("taking into consideration of both throughput and delay,
//! a segment size between 20 and 40 is preferred") falls out of exactly
//! this joint trade-off.

use gossamer::ode::{solve_steady_state, theorems, ModelParams, SteadyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("arguments must be numbers: {e}"))?;
    let (lambda, mu, gamma, c) = match args.as_slice() {
        [] => (20.0, 10.0, 1.0, 6.0),
        [l, m, g, c] => (*l, *m, *g, *c),
        _ => return Err("expected zero or four arguments: lambda mu gamma capacity".into()),
    };

    let t1 = theorems::storage_overhead(lambda, mu, gamma);
    println!("deployment: lambda={lambda} mu={mu} gamma={gamma} c={c}");
    println!(
        "storage (any s): {:.2} blocks/peer, overhead {:.2} (bound {:.2})",
        t1.rho,
        t1.overhead,
        mu / gamma
    );
    println!("capacity ceiling: {:.4} of aggregate demand", c / lambda);
    println!();
    println!(
        "{:>4} {:>12} {:>10} {:>12} {:>12}",
        "s", "throughput", "of ceiling", "block delay", "saved/peer"
    );

    let mut recommended = None;
    let mut peak_delay = f64::NEG_INFINITY;
    for s in [1usize, 2, 5, 10, 15, 20, 30, 40, 50] {
        let params = ModelParams::builder()
            .lambda(lambda)
            .mu(mu)
            .gamma(gamma)
            .segment_size(s)
            .server_capacity(c)
            .build()?;
        let steady = solve_steady_state(params, SteadyOptions::default());
        let tp = theorems::session_throughput(&steady);
        let delay = theorems::block_delay(&steady);
        let saved = theorems::data_saved_per_peer(&steady);
        let fraction = tp.normalized / tp.capacity_fraction;
        println!(
            "{:>4} {:>12.4} {:>9.1}% {:>12} {:>12.2}",
            s,
            tp.normalized,
            fraction * 100.0,
            delay.map(|d| format!("{d:.3}")).unwrap_or_default(),
            saved
        );
        // Joint criterion: near the ceiling AND on the declining side
        // of the delay curve (past its small-s peak).
        let d = delay.unwrap_or(f64::INFINITY);
        if recommended.is_none() && fraction >= 0.99 && d < peak_delay {
            recommended = Some(s);
        }
        peak_delay = peak_delay.max(d);
    }
    println!();
    match recommended {
        Some(s) => println!(
            "recommendation: s = {s} — smallest segment size within 1% of the \
             capacity ceiling and past the delay peak; larger s buys little \
             throughput but more decoding cost."
        ),
        None => println!(
            "no segment size meets the joint criterion at these rates; raise \
             mu (more buffering) or server capacity."
        ),
    }
    Ok(())
}
